//! Scenario execution: build the world a [`Scenario`] describes, run
//! it to completion, and collect the [`Artifacts`] the oracles check.
//!
//! Every run is single-threaded and seeded, so artifacts — including
//! the full typed trace — are bit-identical across replays and across
//! fuzzer thread counts. Worlds get an enlarged trace ring so the
//! count-based oracles see every event (`Trace::dropped() == 0`); when
//! a pathological scenario still overflows it, those oracles skip
//! rather than reason from an incomplete window.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use crate::oracle::{self, Violation};
use crate::scenario::{
    BtScenario, EssScenario, Scenario, ScenarioGen, ScenarioKind, WlanScenario, WmanScenario,
    ZigbeeScenario, ZigbeeTopology,
};
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl, Subtype};
use wn_mac80211::sim::{
    boot as wlan_boot, inject_at, qos_inject_at, AccessCategory, MacConfig, StationStats, UpperCtx,
    UpperLayer, WlanWorld,
};
use wn_net80211::builder::{schedule_walk, EssBuilder};
use wn_net80211::sta::StaConfig;
use wn_net80211::Ssid;
use wn_phy::geom::Point;
use wn_phy::units::Dbm;
use wn_sim::par::par_map_with;
use wn_sim::stats::fnv1a;
use wn_sim::trace::Trace;
use wn_sim::{SchedulerKind, SimDuration, SimTime, Simulation};
use wn_wman::link::WimaxLink;
use wn_wman::scheduler::{boot as wman_boot, BaseStation, ServiceClass, WimaxEvent};
use wn_wpan::bluetooth::{boot as bt_boot, fig_1_2_scatternet, BtNetwork, DeviceClass};
use wn_wpan::zigbee::{mesh_grid, star, ZigbeeEvent};

/// End-state facts from a WLAN (flat or ESS) run.
pub struct WlanFacts {
    /// Per-station MAC counters.
    pub stats: Vec<StationStats>,
    /// Per-station MSDUs still queued or in flight at the end.
    pub pending: Vec<u64>,
    /// Configured short retry limit.
    pub retry_limit_short: u32,
    /// Configured long retry limit.
    pub retry_limit_long: u32,
    /// Effective CWmin.
    pub cw_min: u32,
    /// Effective CWmax.
    pub cw_max: u32,
    /// `layer="mac"` counter values from the metrics snapshot, keyed
    /// `(name, station)` — the cross-check side of the conservation
    /// oracle.
    pub counters: BTreeMap<(&'static str, u32), u64>,
    /// Senders are interchangeable, so fairness bounds apply.
    pub symmetric: bool,
    /// Channels never change mid-run, so NAV reasoning is sound.
    pub nav_checkable: bool,
    /// `(receiver, transmitter, sequence)` of every unicast data MSDU
    /// handed to an upper layer (empty when uppers are not
    /// instrumented, as in ESS runs).
    pub delivered: Vec<(u32, [u8; 6], u16)>,
    /// Frame-arena ledger samples `(arena_refs, held_refs)` taken at
    /// slice boundaries during the run and once at the end — the raw
    /// material for the frame-ledger oracle, which demands the two
    /// sides agree at every instant sampled. A leak (dropped id, or a
    /// holder that forgot to release) shows up as a growing left side;
    /// a double release panics in debug long before it gets here.
    pub ledger: Vec<(u64, u64)>,
    /// Shard-plan incoherences sampled at the same slice boundaries as
    /// the ledger: the interference partition computed at construction
    /// time is re-validated against the live world after every slice
    /// (and therefore after every mobility patch the slice absorbed).
    /// Empty means the partition stayed sound; the `shard-coherence`
    /// oracle reports anything else.
    pub shard_coherence: Vec<String>,
    /// Spatial-grid incoherences sampled at the same slice boundaries:
    /// the grid's structural invariants (cell membership vs live
    /// positions) plus the sparse neighbor rows' stored-vs-fresh
    /// check, which includes the soundness claim that every pair the
    /// grid omitted is below the carrier-sense floor. Always empty on
    /// dense (grid-off or anisotropic) worlds; the `grid-coherence`
    /// oracle reports anything else.
    pub grid_coherence: Vec<String>,
    /// EDCA was on (QoS corpus) — gates the QoS oracles.
    pub edca: bool,
    /// The AC_VO/AC_BK parameter-swap fail-point was armed.
    pub failpoint_aifsn_swap: bool,
    /// Per-access-category median access delay (µs), `None` before any
    /// completion in that category. Indexed AC_VO..AC_BK.
    pub ac_p50_us: [Option<u64>; 4],
    /// Per-access-category completion counts behind those medians.
    pub ac_samples: [u64; 4],
}

/// End-state facts from a ZigBee run.
pub struct ZigbeeFacts {
    /// Packets offered.
    pub offered: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (queue, route, hop budget).
    pub dropped: u64,
    /// Packets still queued at the end.
    pub queued: u64,
    /// Configured hop budget.
    pub hop_limit: u64,
}

/// End-state facts from a Bluetooth run.
pub struct BtFacts {
    /// Application bytes injected by the scenario.
    pub injected: u64,
    /// Bytes landed at their final destination.
    pub delivered: u64,
    /// Bytes still queued (or parked unroutable) at the end.
    pub pending: u64,
}

/// End-state facts from a WiMAX run.
pub struct WmanFacts {
    /// Per-subscriber downlink bytes delivered.
    pub dl_delivered: Vec<u64>,
    /// Per-subscriber uplink bytes landed at the BS.
    pub ul_delivered: Vec<u64>,
}

/// Everything the oracles get to look at after one run.
pub struct Artifacts {
    /// The world's typed trace, moved out intact.
    pub trace: Trace,
    /// FNV-1a hash of the end-of-run metrics snapshot JSONL — the
    /// second fingerprint (besides the trace) the differential
    /// scheduler check compares across back ends.
    pub metrics_fnv: u64,
    /// Virtual end time.
    pub end: SimTime,
    /// WLAN facts (flat and ESS scenarios).
    pub wlan: Option<WlanFacts>,
    /// ZigBee facts.
    pub zigbee: Option<ZigbeeFacts>,
    /// Bluetooth facts.
    pub bt: Option<BtFacts>,
    /// WiMAX facts.
    pub wman: Option<WmanFacts>,
}

/// Trace ring size for fuzz runs — big enough that no scenario the
/// generator can draw evicts records.
pub(crate) const TRACE_CAPACITY: usize = 1 << 17;

/// A shared `(receiver, transmitter, sequence)` delivery log.
pub(crate) type DeliveryLog = Arc<Mutex<Vec<(u32, [u8; 6], u16)>>>;

/// An [`UpperLayer`] that records every unicast data delivery, so the
/// duplicate-delivery oracle can look for MSDUs that slipped past the
/// dedup cache.
pub(crate) struct CheckUpper {
    pub(crate) delivered: DeliveryLog,
}

impl UpperLayer for CheckUpper {
    fn on_frame(&mut self, ctx: &mut UpperCtx, frame: &Frame, _rssi: Dbm) {
        if frame.receiver().is_group() {
            return;
        }
        if !matches!(frame.fc.subtype, Subtype::Data | Subtype::NullData) {
            return;
        }
        if let (Some(tx), Some(seq)) = (frame.transmitter(), frame.seq) {
            self.delivered.lock().expect("delivery log lock").push((
                ctx.id as u32,
                tx.0,
                seq.sequence,
            ));
        }
    }
}

/// Runs one scenario to completion on the default scheduler back end
/// and returns its artifacts.
pub fn run_scenario(sc: &Scenario) -> Artifacts {
    run_scenario_with(sc, SchedulerKind::default())
}

/// Runs one scenario on an explicit scheduler back end.
///
/// Scenario semantics never depend on the back end — this entry point
/// exists so the differential fuzz mode can replay the same seed
/// through both queues and demand identical fingerprints.
pub fn run_scenario_with(sc: &Scenario, kind: SchedulerKind) -> Artifacts {
    run_scenario_opts(sc, kind, true)
}

/// Runs one scenario with an explicit scheduler back end *and*
/// neighbor-cache switch. The cached and direct propagation paths must
/// be byte-identical — the `--cache-diff` fuzz mode replays the same
/// seed through both and demands identical fingerprints, exactly like
/// the dual-scheduler mode does for queue back ends. Non-WLAN worlds
/// have no such cache; the flag is ignored for them.
pub fn run_scenario_opts(sc: &Scenario, kind: SchedulerKind, neighbor_cache: bool) -> Artifacts {
    run_scenario_grid(sc, kind, neighbor_cache, true)
}

/// [`run_scenario_opts`] with an explicit spatial-grid-index switch.
/// Grid-backed (sparse-row, O(n·k)) and exhaustive (dense, O(n²))
/// scans must be byte-identical — the `--grid-diff` fuzz mode replays
/// the same seed through both and demands identical fingerprints.
/// Non-WLAN worlds have no grid; the flag is ignored for them.
pub fn run_scenario_grid(
    sc: &Scenario,
    kind: SchedulerKind,
    neighbor_cache: bool,
    grid_index: bool,
) -> Artifacts {
    match &sc.kind {
        ScenarioKind::Wlan(w) => run_wlan(sc.seed, w, kind, neighbor_cache, grid_index),
        ScenarioKind::Ess(e) => run_ess(sc.seed, e, kind, neighbor_cache, grid_index),
        ScenarioKind::Bluetooth(b) => run_bt(b, kind),
        ScenarioKind::Zigbee(z) => run_zigbee(sc.seed, z, kind),
        ScenarioKind::Wman(w) => run_wman(w, kind),
    }
}

fn mac_counters(world: &WlanWorld, end: SimTime) -> BTreeMap<(&'static str, u32), u64> {
    let mut counters = BTreeMap::new();
    for row in world.metrics_snapshot(end).rows {
        if row.kind != "counter" || row.key.layer != "mac" {
            continue;
        }
        let Some(station) = row.key.station else {
            continue;
        };
        if let Some(&(_, v)) = row.fields.first() {
            counters.insert((row.key.name, station), v as u64);
        }
    }
    counters
}

#[allow(clippy::too_many_arguments)]
fn wlan_facts(
    world: &WlanWorld,
    end: SimTime,
    symmetric: bool,
    nav_checkable: bool,
    delivered: Vec<(u32, [u8; 6], u16)>,
    ledger: Vec<(u64, u64)>,
    shard_coherence: Vec<String>,
    grid_coherence: Vec<String>,
) -> WlanFacts {
    let n = world.station_count();
    let acs = AccessCategory::ALL;
    WlanFacts {
        stats: (0..n).map(|i| world.stats(i).clone()).collect(),
        pending: (0..n).map(|i| world.pending_msdus(i)).collect(),
        retry_limit_short: world.config().retry_limit_short,
        retry_limit_long: world.config().retry_limit_long,
        cw_min: world.config().cw_min(),
        cw_max: world.config().cw_max(),
        counters: mac_counters(world, end),
        symmetric,
        nav_checkable,
        delivered,
        ledger,
        shard_coherence,
        grid_coherence,
        edca: world.config().edca,
        failpoint_aifsn_swap: world.config().failpoint_aifsn_swap,
        ac_p50_us: acs.map(|ac| world.ac_delay_quantile(ac, 0.5)),
        ac_samples: acs.map(|ac| world.ac_delay_samples(ac)),
    }
}

/// Mid-run sampling points for the frame-ledger oracle. Running to the
/// deadline in slices is behaviour-identical to one `run_until` (the
/// engine pops strictly by `peek_time() <= deadline`), so the samples
/// cost nothing but the ledger walks themselves — and they catch leaks
/// that an end-of-run check would miss because drained worlds balance
/// trivially.
const LEDGER_SLICES: u64 = 8;

pub(crate) fn data_frame(from: u32, to: u32, len: usize) -> Frame {
    Frame::data(
        DsBits::Ibss,
        MacAddr::station(to),
        MacAddr::station(from),
        MacAddr::random_ibss_bssid(1),
        SequenceControl::default(),
        vec![0xF2; len],
    )
}

/// The MAC configuration a flat-WLAN scenario maps to. Shared between
/// the classic single-world runner and the shard component builder so
/// the two execution modes are the same construction by definition.
pub(crate) fn wlan_config(seed: u64, w: &WlanScenario) -> MacConfig {
    let mut cfg = MacConfig::new(w.standard);
    cfg.seed = seed;
    cfg.rts_threshold = w.rts_threshold;
    cfg.frag_threshold = w.frag_threshold;
    cfg.queue_limit = w.queue_limit;
    cfg.retry_limit_short = w.retry_limit_short;
    cfg.retry_limit_long = w.retry_limit_long;
    cfg.cw_min_override = w.cw_min_override;
    cfg.cw_max_override = w.cw_max_override;
    cfg.arf = w.arf;
    cfg.failpoint_retry_overrun = w.failpoint_retry_overrun;
    cfg.edca = w.edca;
    cfg.ampdu_max_mpdus = w.ampdu_max_mpdus;
    cfg.ampdu_per_mpdu_loss = w.ampdu_per_mpdu_loss;
    cfg.failpoint_aifsn_swap = w.failpoint_aifsn_swap;
    cfg
}

/// Station `i`'s position in a flat-WLAN scenario: the sink at the
/// origin, senders on a ring. The OBSS twin cell is the same ring
/// shifted three radii along x — overlapped in carrier-sense range
/// (one contention domain) but its own BSS.
pub(crate) fn wlan_station_pos(w: &WlanScenario, i: usize) -> Point {
    let (cell, i) = (i / w.stations, i % w.stations);
    let dx = cell as f64 * 3.0 * w.radius_m;
    if i == 0 {
        Point::new(dx, 0.0)
    } else {
        let a = i as f64 / (w.stations - 1) as f64 * std::f64::consts::TAU;
        Point::new(dx + w.radius_m * a.cos(), w.radius_m * a.sin())
    }
}

/// The sink global station `g` floods in a flat-WLAN scenario, or
/// `None` when `g` is itself a cell's sink.
pub(crate) fn wlan_sink_of(w: &WlanScenario, g: usize) -> Option<usize> {
    let sink = g / w.stations * w.stations;
    (g != sink).then_some(sink)
}

/// The access category sender `g`'s `k`-th frame rides in a QoS
/// scenario: a deterministic cycle over all four ACs, phase-shifted
/// per sender so every station offers a mixed-AC load.
pub(crate) fn wlan_ac_of(g: usize, k: u64) -> AccessCategory {
    AccessCategory::from_index((g + k as usize) % 4).expect("4 ACs")
}

fn run_wlan(
    seed: u64,
    w: &WlanScenario,
    kind: SchedulerKind,
    neighbor_cache: bool,
    grid_index: bool,
) -> Artifacts {
    let delivered = Arc::new(Mutex::new(Vec::new()));
    let mut world = WlanWorld::new(wlan_config(seed, w));
    world.set_neighbor_cache(neighbor_cache);
    world.set_grid_index(grid_index);
    world.trace = Trace::new(TRACE_CAPACITY);
    for i in 0..w.total_stations() {
        world.add_station(
            MacAddr::station(i as u32),
            wlan_station_pos(w, i),
            Box::new(CheckUpper {
                delivered: delivered.clone(),
            }),
        );
    }
    if w.deaf_sink {
        // The fault toggle: the sink stops hearing anything, so every
        // unicast to it walks the full retry ladder.
        world.set_channel(0, 11);
    }
    // The interference partition this deployment would shard into —
    // re-validated at every slice boundary below, feeding the
    // shard-coherence oracle.
    let plan = world.shard_plan(SimTime::ZERO, None);

    let mut sim = Simulation::with_scheduler(world, kind);
    wlan_boot(&mut sim);
    for g in 0..w.total_stations() {
        let Some(sink) = wlan_sink_of(w, g) else {
            continue;
        };
        for k in 0..u64::from(w.frames_per_sender) {
            let at = SimTime::from_micros(k * w.interval_us);
            let frame = data_frame(g as u32, sink as u32, w.payload);
            if w.edca {
                qos_inject_at(&mut sim, at, g, frame, wlan_ac_of(g, k));
            } else {
                inject_at(&mut sim, at, g, frame);
            }
        }
    }
    let end = SimTime::from_millis(w.duration_ms);
    let mut ledger = Vec::with_capacity(LEDGER_SLICES as usize);
    let mut shard_coherence = Vec::new();
    let mut grid_coherence = Vec::new();
    for s in 1..=LEDGER_SLICES {
        let slice_end = SimTime::from_micros(w.duration_ms * 1000 * s / LEDGER_SLICES);
        sim.run_until(slice_end);
        ledger.push(sim.world().frame_ledger());
        if let Some(inc) = sim.world().shard_plan_incoherence(&plan, slice_end) {
            shard_coherence.push(inc.to_string());
        }
        grid_coherence.extend(sim.world().grid_incoherence(slice_end));
    }

    let mut world = sim.into_world();
    let delivered = std::mem::take(&mut *delivered.lock().expect("delivery log lock"));
    let facts = wlan_facts(
        &world,
        end,
        w.symmetric(),
        true,
        delivered,
        ledger,
        shard_coherence,
        grid_coherence,
    );
    Artifacts {
        trace: std::mem::take(&mut world.trace),
        metrics_fnv: fnv1a(world.metrics_snapshot(end).to_jsonl("fuzz").as_bytes()),
        end,
        wlan: Some(facts),
        zigbee: None,
        bt: None,
        wman: None,
    }
}

/// Builds the ESS simulation a scenario describes — construction only,
/// no events run. Shared between the classic runner and the shard
/// harness (an ESS is always a single shard: scanning and roaming
/// switch channels mid-run, which collapses any static conflict-graph
/// partition, so the whole ESS advances as one component).
pub(crate) fn build_ess_sim(
    seed: u64,
    e: &EssScenario,
    kind: SchedulerKind,
    neighbor_cache: bool,
) -> Simulation<WlanWorld> {
    let ssid = Ssid::new("Fuzz").expect("valid ssid");
    let mut mac = MacConfig::new(wn_phy::modulation::PhyStandard::Dot11g);
    mac.seed = seed;
    let channels: Vec<u8> = if e.aps == 2 { vec![1, 6] } else { vec![1] };
    let mut builder = EssBuilder::new(mac, ssid.clone())
        .scheduler(kind)
        .neighbor_cache(neighbor_cache)
        .ap(Point::new(0.0, 0.0), 1);
    if e.aps == 2 {
        builder = builder.ap(Point::new(e.ap_spacing_m, 0.0), 6);
    }
    for (i, &ps) in e.sta_power_save.iter().enumerate() {
        let pos = Point::new(10.0, 3.0 * i as f64);
        if ps {
            let mut cfg = StaConfig::open(ssid.clone(), channels.clone());
            cfg.power_save = true;
            builder = builder.sta_with(pos, cfg);
        } else {
            builder = builder.sta(pos);
        }
    }
    let mut ess = builder.build();
    ess.sim.world_mut().trace = Trace::new(TRACE_CAPACITY);

    if e.walker && !e.sta_power_save.is_empty() {
        schedule_walk(
            &mut ess.sim,
            ess.sta_ids[0],
            Point::new(10.0, 0.0),
            Point::new(e.ap_spacing_m - 10.0, 0.0),
            e.walk_speed_mps,
            SimDuration::from_millis(200),
            SimTime::from_secs(1),
        );
    }
    ess.sim
}

fn run_ess(
    seed: u64,
    e: &EssScenario,
    kind: SchedulerKind,
    neighbor_cache: bool,
    grid_index: bool,
) -> Artifacts {
    let mut sim = build_ess_sim(seed, e, kind, neighbor_cache);
    sim.world_mut().set_grid_index(grid_index);
    // The execution partition of an ESS is the trivial single shard
    // (see `build_ess_sim`); re-validating it at each slice still
    // catches station-set drift under mobility.
    let n = sim.world().station_count();
    let plan = wn_mac80211::shard::ShardPlan {
        shard_of: vec![0; n],
        shards: vec![(0..n).collect()],
        lookahead: SimDuration::MAX,
        max_interference_range_m: f64::INFINITY,
    };
    let end = SimTime::from_secs(e.duration_s);
    let mut ledger = Vec::with_capacity(LEDGER_SLICES as usize);
    let mut shard_coherence = Vec::new();
    let mut grid_coherence = Vec::new();
    for s in 1..=LEDGER_SLICES {
        let slice_end = SimTime::from_millis(e.duration_s * 1000 * s / LEDGER_SLICES);
        sim.run_until(slice_end);
        ledger.push(sim.world().frame_ledger());
        if let Some(inc) = sim.world().shard_plan_incoherence(&plan, slice_end) {
            shard_coherence.push(inc.to_string());
        }
        grid_coherence.extend(sim.world().grid_incoherence(slice_end));
    }

    let mut world = sim.into_world();
    // Channel switching (scanning / roaming) silently clears NAV, so
    // NAV reasoning is unsound here; fairness likewise (uppers differ).
    let facts = wlan_facts(
        &world,
        end,
        false,
        false,
        Vec::new(),
        ledger,
        shard_coherence,
        grid_coherence,
    );
    Artifacts {
        trace: std::mem::take(&mut world.trace),
        metrics_fnv: fnv1a(world.metrics_snapshot(end).to_jsonl("fuzz").as_bytes()),
        end,
        wlan: Some(facts),
        zigbee: None,
        bt: None,
        wman: None,
    }
}

fn run_bt(b: &BtScenario, kind: SchedulerKind) -> Artifacts {
    let (mut net, devices) = if b.scatternet {
        let (net, _pa, _pb, _bridge) = fig_1_2_scatternet(b.slaves_a, b.slaves_b);
        let count = b.device_count();
        (net, (0..count).collect::<Vec<_>>())
    } else {
        let mut net = BtNetwork::new();
        let master = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(master).expect("fresh master");
        let mut devices = vec![master];
        for i in 0..b.slaves_a {
            let s = net.add_device(Point::new(1.0, 1.0 + i as f64), DeviceClass::Class2);
            net.join(p, s).expect("in range");
            devices.push(s);
        }
        (net, devices)
    };
    net.trace = Trace::new(TRACE_CAPACITY);

    let mut injected = 0u64;
    for &(src, dst, bytes) in &b.transfers {
        if src < devices.len() && dst < devices.len() && src != dst {
            net.send(devices[src], devices[dst], bytes);
            injected += bytes as u64;
        }
    }

    let mut sim = Simulation::with_scheduler(net, kind);
    bt_boot(&mut sim);
    let end = SimTime::from_millis(b.duration_ms);
    sim.run_until(end);

    let mut world = sim.into_world();
    let delivered = devices.iter().map(|&d| world.delivered_bytes(d)).sum();
    let facts = BtFacts {
        injected,
        delivered,
        pending: world.pending_bytes(),
    };
    Artifacts {
        trace: std::mem::take(&mut world.trace),
        metrics_fnv: fnv1a(world.metrics_snapshot(end).to_jsonl("fuzz").as_bytes()),
        end,
        wlan: None,
        zigbee: None,
        bt: Some(facts),
        wman: None,
    }
}

fn run_zigbee(seed: u64, z: &ZigbeeScenario, kind: SchedulerKind) -> Artifacts {
    let mut net = match z.topology {
        ZigbeeTopology::Star { n, radius_m } => star(n, radius_m, seed).0,
        ZigbeeTopology::Mesh {
            cols,
            rows,
            spacing_m,
        } => mesh_grid(cols, rows, spacing_m, seed),
    };
    net.trace = Trace::new(TRACE_CAPACITY);
    let nodes = z.topology.node_count();

    let mut sim = Simulation::with_scheduler(net, kind);
    for &(src, dst, bytes, at_ms) in &z.sends {
        if src < nodes && dst < nodes && src != dst {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(at_ms),
                ZigbeeEvent::Send { src, dst, bytes },
            );
        }
    }
    let end = SimTime::from_millis(z.duration_ms);
    sim.run_until(end);

    let mut world = sim.into_world();
    let facts = ZigbeeFacts {
        offered: world.offered(),
        delivered: world.stats.delivered,
        dropped: world.stats.dropped,
        queued: world.queued_total(),
        hop_limit: world.hop_limit as u64,
    };
    Artifacts {
        trace: std::mem::take(&mut world.trace),
        metrics_fnv: fnv1a(world.metrics_snapshot(end).to_jsonl("fuzz").as_bytes()),
        end,
        wlan: None,
        zigbee: Some(facts),
        bt: None,
        wman: None,
    }
}

fn run_wman(w: &WmanScenario, kind: SchedulerKind) -> Artifacts {
    const CLASSES: [ServiceClass; 4] = [
        ServiceClass::Ugs,
        ServiceClass::Rtps,
        ServiceClass::Nrtps,
        ServiceClass::BestEffort,
    ];
    let mut bs = BaseStation::new(WimaxLink::default());
    bs.dl_ratio = w.dl_ratio;
    bs.queue_limit_bytes = w.queue_limit_bytes;
    bs.trace = Trace::new(TRACE_CAPACITY);

    let admitted: Vec<Option<usize>> = w
        .subs
        .iter()
        .map(|s| bs.add_subscriber(s.dist_m, s.obstructed, CLASSES[s.class % 4], s.reserved_bps))
        .collect();

    let mut sim = Simulation::with_scheduler(bs, kind);
    wman_boot(&mut sim);
    for (spec, id) in w.subs.iter().zip(&admitted) {
        let Some(ss) = *id else { continue };
        for t in 0..w.duration_ms / 100 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::Offer {
                    ss,
                    bytes: spec.dl_offer,
                },
            );
            if spec.ul_offer > 0 {
                sim.scheduler_mut().schedule_at(
                    SimTime::from_millis(t * 100),
                    WimaxEvent::OfferUplink {
                        ss,
                        bytes: spec.ul_offer,
                    },
                );
            }
        }
    }
    let end = SimTime::from_millis(w.duration_ms);
    sim.run_until(end);

    let mut world = sim.into_world();
    let n = world.subscriber_count();
    let facts = WmanFacts {
        dl_delivered: (0..n).map(|i| world.delivered_bytes(i)).collect(),
        ul_delivered: (0..n).map(|i| world.ul_delivered_bytes(i)).collect(),
    };
    Artifacts {
        trace: std::mem::take(&mut world.trace),
        metrics_fnv: fnv1a(world.metrics_snapshot(end).to_jsonl("fuzz").as_bytes()),
        end,
        wlan: None,
        zigbee: None,
        bt: None,
        wman: Some(facts),
    }
}

/// Runs every oracle against one run's artifacts.
pub fn run_oracles(art: &Artifacts) -> Vec<Violation> {
    oracle::oracles()
        .iter()
        .flat_map(|o| o.check(art))
        .collect()
}

/// Builds, runs and checks one explicit scenario.
pub fn check_scenario(sc: &Scenario) -> Vec<Violation> {
    run_oracles(&run_scenario(sc))
}

/// The outcome of fuzzing one seed.
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Scenario one-liner.
    pub summary: String,
    /// Scenario kind tag.
    pub kind: &'static str,
    /// Typed trace events the run emitted.
    pub events: usize,
    /// FNV-1a hash of the full trace JSONL (replay fingerprint).
    pub trace_fnv: u64,
    /// FNV-1a hash of the end-of-run metrics snapshot JSONL.
    pub metrics_fnv: u64,
    /// Oracle violations (empty = clean).
    pub violations: Vec<Violation>,
}

/// Generates, runs and checks the scenario for `seed`.
pub fn check_seed(seed: u64) -> SeedReport {
    check_seed_with(seed, SchedulerKind::default())
}

/// [`check_seed`] on an explicit scheduler back end.
pub fn check_seed_with(seed: u64, scheduler: SchedulerKind) -> SeedReport {
    check_seed_opts(seed, scheduler, true)
}

/// [`check_seed`] with explicit scheduler and neighbor-cache choices.
pub fn check_seed_opts(seed: u64, scheduler: SchedulerKind, neighbor_cache: bool) -> SeedReport {
    check_seed_gen(&ScenarioGen::default(), seed, scheduler, neighbor_cache)
}

/// [`check_seed`] with an explicit spatial-grid-index switch — the
/// `--grid-diff` fuzz mode runs every seed once with the grid on
/// (sparse neighbor rows, grid-backed shard plans) and once off
/// (exhaustive dense scans) and demands identical fingerprints.
pub fn check_seed_grid(seed: u64, scheduler: SchedulerKind, grid_index: bool) -> SeedReport {
    let sc = ScenarioGen::default().scenario(seed);
    let art = run_scenario_grid(&sc, scheduler, true, grid_index);
    let violations = run_oracles(&art);
    SeedReport {
        seed,
        summary: sc.summary(),
        kind: sc.kind_tag(),
        events: art.trace.events().count(),
        trace_fnv: fnv1a(art.trace.to_jsonl("fuzz").as_bytes()),
        metrics_fnv: art.metrics_fnv,
        violations,
    }
}

/// [`check_seed_grid`] over a seed range across `threads` workers.
pub fn check_range_grid(
    start: u64,
    count: u64,
    threads: usize,
    grid_index: bool,
) -> Vec<SeedReport> {
    let seeds: Vec<u64> = (start..start + count).collect();
    par_map_with(threads, seeds, move |seed| {
        check_seed_grid(seed, SchedulerKind::default(), grid_index)
    })
}

/// [`check_seed_opts`] under an explicit scenario generator — how the
/// `--qos` corpus and the fail-point self-tests run seeds.
pub fn check_seed_gen(
    gen: &ScenarioGen,
    seed: u64,
    scheduler: SchedulerKind,
    neighbor_cache: bool,
) -> SeedReport {
    let sc = gen.scenario(seed);
    let art = run_scenario_opts(&sc, scheduler, neighbor_cache);
    let violations = run_oracles(&art);
    SeedReport {
        seed,
        summary: sc.summary(),
        kind: sc.kind_tag(),
        events: art.trace.events().count(),
        trace_fnv: fnv1a(art.trace.to_jsonl("fuzz").as_bytes()),
        metrics_fnv: art.metrics_fnv,
        violations,
    }
}

/// Fuzzes `count` seeds starting at `start` across `threads` workers.
///
/// Each seed's run is fully independent and single-threaded, so the
/// reports — including every trace fingerprint — are identical for any
/// `threads` value.
pub fn check_range(start: u64, count: u64, threads: usize) -> Vec<SeedReport> {
    check_range_with(start, count, threads, SchedulerKind::default())
}

/// [`check_range`] on an explicit scheduler back end.
pub fn check_range_with(
    start: u64,
    count: u64,
    threads: usize,
    scheduler: SchedulerKind,
) -> Vec<SeedReport> {
    check_range_opts(start, count, threads, scheduler, true)
}

/// [`check_range`] with explicit scheduler and neighbor-cache choices.
pub fn check_range_opts(
    start: u64,
    count: u64,
    threads: usize,
    scheduler: SchedulerKind,
    neighbor_cache: bool,
) -> Vec<SeedReport> {
    check_range_gen(
        ScenarioGen::default(),
        start,
        count,
        threads,
        scheduler,
        neighbor_cache,
    )
}

/// [`check_range_opts`] under an explicit scenario generator.
pub fn check_range_gen(
    gen: ScenarioGen,
    start: u64,
    count: u64,
    threads: usize,
    scheduler: SchedulerKind,
    neighbor_cache: bool,
) -> Vec<SeedReport> {
    let seeds: Vec<u64> = (start..start + count).collect();
    par_map_with(threads, seeds, move |seed| {
        check_seed_gen(&gen, seed, scheduler, neighbor_cache)
    })
}

/// Byte-stable JSONL digest of a fuzz range, for determinism tests:
/// one line per seed with kind, event count, violation count and the
/// trace and metrics fingerprints.
pub fn range_digest(start: u64, count: u64, threads: usize) -> String {
    range_digest_with(start, count, threads, SchedulerKind::default())
}

/// [`range_digest`] on an explicit scheduler back end. The digest
/// deliberately omits the back-end label: both schedulers must produce
/// byte-identical output for the same seed range.
pub fn range_digest_with(
    start: u64,
    count: u64,
    threads: usize,
    scheduler: SchedulerKind,
) -> String {
    let mut out = String::new();
    for r in check_range_with(start, count, threads, scheduler) {
        out.push_str(&format!(
            "{{\"seed\":{},\"kind\":\"{}\",\"events\":{},\"violations\":{},\"trace_fnv\":\"{:016x}\",\"metrics_fnv\":\"{:016x}\"}}\n",
            r.seed,
            r.kind,
            r.events,
            r.violations.len(),
            r.trace_fnv,
            r.metrics_fnv
        ));
    }
    out
}
