//! FIG-1.11/1.12 — regenerates the MAC frame anatomy/overhead data and
//! times the bit-exact codec (serialise + FCS + parse).

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_12_frame_overhead;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl};

fn main() {
    let (fig, report) = fig_1_12_frame_overhead();
    print_figure(&fig);
    print_report(&report);

    let frame = Frame::data(
        DsBits::ToAp,
        MacAddr::station(2),
        MacAddr::station(1),
        MacAddr::access_point(0),
        SequenceControl {
            fragment: 0,
            sequence: 1234,
        },
        vec![0xAB; 1500],
    );
    bench("fig12/serialize_1500B", || black_box(frame.to_bytes()));

    let mut buf = Vec::with_capacity(frame.wire_len());
    bench("fig12/write_into_1500B_reused_buf", || {
        buf.clear();
        frame.write_into(&mut buf);
        black_box(buf.len())
    });

    let wire = frame.to_bytes();
    bench("fig12/parse_and_verify_fcs_1500B", || {
        black_box(Frame::from_bytes(&wire).expect("valid frame"))
    });
    let ack = Frame::ack(MacAddr::station(7));
    bench("fig12/roundtrip_ack", || {
        black_box(Frame::from_bytes(&ack.to_bytes()).expect("valid ack"))
    });
}
