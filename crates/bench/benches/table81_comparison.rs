//! TAB-8.1 — regenerates the closing "Comparison of wireless networks
//! types" table, paper vs measured, and times a full table rebuild.

use std::hint::black_box;

use wn_bench::{bench, print_report};
use wn_core::registry::comparison_table;
use wn_core::scenarios::table_8_1;

fn main() {
    println!(
        "\n{:<16} {:<6} {:<28} {:>13} {:>13} {:>11} {:>11}",
        "name", "class", "standard", "paper rate", "measured", "paper rng", "measured"
    );
    for row in comparison_table() {
        println!(
            "{:<16} {:<6} {:<28} {:>13} {:>13} {:>10.0}m {:>10.0}m",
            row.name,
            row.class.abbrev(),
            row.standard,
            row.paper_max_rate.to_string(),
            row.measured_max_rate.to_string(),
            row.paper_range_m,
            row.measured_range_m
        );
    }
    print_report(&table_8_1());

    bench("table81/full_rebuild", || {
        black_box(comparison_table().len())
    });
}
