//! Partition properties of the interference shard planner and the
//! byte-identity contract of the shard executor (DESIGN.md §15),
//! checked end to end through the public facade:
//!
//! - no audible co-channel pair ever straddles a shard boundary (the
//!   cached audible-neighbor lists are the witness);
//! - the plan's cross-shard lookahead never exceeds any cross-shard
//!   pair's actual propagation delay (the conservative-DES bound);
//! - stale plans are caught by `shard_plan_incoherence` after the
//!   world changes under them (the `shard-coherence` oracle's check);
//! - the windowed shard executor produces byte-identical digests to
//!   the serial composition at 1, 2 and 4 workers, and a
//!   single-component composition bridges to a plain `run_until`.

use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::shard::{
    component_seed, propagation_delay, run_components_serial, run_components_windowed,
    ShardIncoherence,
};
use wireless_networks::mac80211::sim::{boot, inject_at, MacConfig, NullUpper, WlanWorld};
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::stats::fnv1a;
use wireless_networks::sim::{SimDuration, SimTime, Simulation};

/// A world of station clusters: each `(centre, channel, count)` entry
/// puts one station at the centre and the rest on an 8 m ring.
fn cluster_world(seed: u64, clusters: &[(Point, u8, usize)]) -> WlanWorld {
    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    let mut w = WlanWorld::new(cfg);
    let mut g = 0u32;
    for &(centre, ch, count) in clusters {
        for k in 0..count {
            let pos = if k == 0 {
                centre
            } else {
                let a = k as f64 / count as f64 * std::f64::consts::TAU;
                Point::new(centre.x + 8.0 * a.cos(), centre.y + 8.0 * a.sin())
            };
            let id = g as usize;
            w.add_station(MacAddr::station(g), pos, Box::new(NullUpper));
            w.set_channel(id, ch);
            g += 1;
        }
    }
    w
}

/// Deterministic xorshift for scatter placement — the test's own
/// stream, independent of the simulation RNG.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Every audible pair shares a shard when all stations share one
/// channel: audibility implies spectral overlap implies coupling, so
/// the cached audible-neighbor lists are a direct witness against the
/// partition. Random scatters over a 600 m square, several seeds,
/// both a finite coupling radius and the unbounded one.
#[test]
fn audible_pairs_never_straddle_shards() {
    for seed in [1u64, 7, 42] {
        let mut rng = seed | 1;
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        let mut w = WlanWorld::new(cfg);
        for g in 0..40u32 {
            let x = (xorshift(&mut rng) % 600_000) as f64 / 1_000.0;
            let y = (xorshift(&mut rng) % 600_000) as f64 / 1_000.0;
            w.add_station(MacAddr::station(g), Point::new(x, y), Box::new(NullUpper));
        }
        w.set_neighbor_cache(true);
        w.prime_neighbor_cache(SimTime::ZERO);
        for range in [Some(120.0), None] {
            let plan = w.shard_plan(SimTime::ZERO, range);
            assert_eq!(plan.station_count(), 40);
            for i in 0..40usize {
                for &j in w.neighbor_cache().audible_list(i).iter() {
                    assert_eq!(
                        plan.shard_of[i], plan.shard_of[j],
                        "seed {seed} range {range:?}: audible pair ({i}, {j}) straddles shards"
                    );
                }
            }
            assert!(
                w.shard_plan_incoherence(&plan, SimTime::ZERO).is_none(),
                "seed {seed} range {range:?}: fresh plan must validate"
            );
        }
    }
}

/// The plan's lookahead is a conservative bound: for every pair of
/// stations in different shards, the pair's actual propagation delay
/// is at least the plan's lookahead.
#[test]
fn cross_shard_lookahead_never_exceeds_any_pair_delay() {
    // Three co-channel islands far apart plus one orthogonal-channel
    // cluster sitting between them: four shards, mixed separations.
    let w = cluster_world(
        3,
        &[
            (Point::new(0.0, 0.0), 1, 5),
            (Point::new(400.0, 0.0), 1, 5),
            (Point::new(0.0, 500.0), 1, 5),
            (Point::new(200.0, 30.0), 6, 5),
        ],
    );
    let plan = w.shard_plan(SimTime::ZERO, Some(250.0));
    assert_eq!(plan.shard_count(), 4, "four decoupled islands expected");
    assert!(plan.lookahead > SimDuration::ZERO);
    let n = plan.station_count();
    for i in 0..n {
        for j in (i + 1)..n {
            if plan.shard_of[i] == plan.shard_of[j] {
                continue;
            }
            let d = w.position(i).distance_to(w.position(j));
            assert!(
                propagation_delay(d) >= plan.lookahead,
                "pair ({i}, {j}) at {d:.1} m beats the {} lookahead",
                plan.lookahead
            );
        }
    }
}

/// A plan computed against one deployment must fail validation once
/// the world contradicts it — the check behind the `shard-coherence`
/// oracle, which re-validates the partition after mobility patches.
#[test]
fn stale_plans_are_caught_by_the_coherence_check() {
    let far = cluster_world(
        5,
        &[(Point::new(0.0, 0.0), 1, 4), (Point::new(500.0, 0.0), 1, 4)],
    );
    let plan = far.shard_plan(SimTime::ZERO, Some(250.0));
    assert_eq!(plan.shard_count(), 2);
    assert!(far.shard_plan_incoherence(&plan, SimTime::ZERO).is_none());

    // The same stations with the second island walked next door: the
    // old partition now splits a coupled pair.
    let near = cluster_world(
        5,
        &[(Point::new(0.0, 0.0), 1, 4), (Point::new(30.0, 0.0), 1, 4)],
    );
    match near.shard_plan_incoherence(&plan, SimTime::ZERO) {
        Some(ShardIncoherence::CoupledAcrossShards { .. }) => {}
        other => panic!("expected CoupledAcrossShards, got {other:?}"),
    }

    // A world that gained a station invalidates the plan outright.
    let grown = cluster_world(
        5,
        &[(Point::new(0.0, 0.0), 1, 4), (Point::new(500.0, 0.0), 1, 5)],
    );
    match grown.shard_plan_incoherence(&plan, SimTime::ZERO) {
        Some(ShardIncoherence::StationCountChanged { planned, actual }) => {
            assert_eq!((planned, actual), (8, 9));
        }
        other => panic!("expected StationCountChanged, got {other:?}"),
    }
}

/// Builds one saturated component cell for the executor tests: a sink
/// and three senders, 30 frames each.
fn traffic_cell(seed: u64, k: usize, channel: u8) -> Simulation<WlanWorld> {
    let centre = Point::new(k as f64 * 300.0, 0.0);
    let mut w = cluster_world(component_seed(seed, k), &[(centre, channel, 4)]);
    w.set_neighbor_cache(true);
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    for sender in 1..4usize {
        for f in 0..30u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(f * 700),
                sender,
                wireless_networks::mac80211::frame::Frame::data(
                    wireless_networks::mac80211::frame::DsBits::Ibss,
                    MacAddr::station(0),
                    MacAddr::station(sender as u32),
                    MacAddr::random_ibss_bssid(1),
                    wireless_networks::mac80211::frame::SequenceControl::default(),
                    vec![0xDA; 300],
                ),
            );
        }
    }
    sim
}

/// The executor differential at root level: three traffic-carrying
/// cells on channels 1/6/11, serial vs windowed at 1, 2 and 4
/// workers, byte-identical digests everywhere — and the worker count
/// never changes the answer.
#[test]
fn windowed_executor_is_byte_identical_to_serial() {
    let horizon = SimTime::from_millis(30);
    let build = |k: usize| traffic_cell(11, k, [1u8, 6, 11][k]);
    let serial = run_components_serial(3, horizon, "shards", build);
    assert!(serial.events > 0);
    for workers in [1usize, 2, 4] {
        let windowed = run_components_windowed(
            3,
            horizon,
            SimDuration::from_micros(640),
            workers,
            "shards",
            build,
        );
        assert_eq!(serial, windowed, "windowed x{workers} diverged from serial");
    }
}

/// A single-component composition is the classic engine: its digest
/// must equal a plain `run_until` over an identically built world —
/// the bridge that anchors the sharded harness to the unsharded one.
#[test]
fn single_component_composition_bridges_to_plain_run_until() {
    let horizon = SimTime::from_millis(30);
    let report = run_components_serial(1, horizon, "shards", |k| traffic_cell(11, k, 1));
    let mut sim = traffic_cell(11, 0, 1);
    let events = sim.run_until(horizon);
    let trace = fnv1a(sim.world().trace.to_jsonl("shards").as_bytes());
    let metrics = fnv1a(
        sim.world()
            .metrics_snapshot(horizon)
            .to_jsonl("shards")
            .as_bytes(),
    );
    assert_eq!(report.events, events);
    assert_eq!(report.trace_fnv, trace);
    assert_eq!(report.metrics_fnv, metrics);
}
