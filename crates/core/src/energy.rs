//! Energy modelling for the §2.1 "low power demands" claim.
//!
//! The text positions the WPAN technologies by power: ZigBee targets
//! "low-power and low-data rate wireless device networks", Bluetooth
//! was "designed for low power consumption", while Wi-Fi buys range
//! and rate with wattage. This module makes that executable: radio
//! power profiles for each technology, the energy cost of a duty-cycled
//! telemetry workload, and the resulting battery life.

use crate::registry::Technology;

/// A radio's power profile (typical chipset values).
#[derive(Clone, Copy, Debug)]
pub struct PowerProfile {
    /// Transmit power draw, milliwatts (circuit + PA).
    pub tx_mw: f64,
    /// Receive/listen draw, milliwatts.
    pub rx_mw: f64,
    /// Sleep draw, milliwatts.
    pub sleep_mw: f64,
    /// Time to wake from sleep and settle, seconds.
    pub wakeup_s: f64,
    /// Net air rate used for telemetry, bits per second.
    pub rate_bps: f64,
}

impl PowerProfile {
    /// Typical profile for a technology (datasheet-class numbers).
    pub fn for_technology(tech: Technology) -> Option<PowerProfile> {
        match tech {
            Technology::Zigbee => Some(PowerProfile {
                // CC2420-class: ~17 mA TX @3V, ~20 mA RX, ~1 µA sleep.
                tx_mw: 52.0,
                rx_mw: 59.0,
                sleep_mw: 0.003,
                wakeup_s: 0.002,
                rate_bps: 250_000.0,
            }),
            Technology::Bluetooth => Some(PowerProfile {
                // Class-2 BR/EDR module.
                tx_mw: 90.0,
                rx_mw: 80.0,
                sleep_mw: 0.09,
                wakeup_s: 0.003,
                rate_bps: 723_000.0,
            }),
            Technology::WiFi(_) => Some(PowerProfile {
                // 802.11 b/g station module.
                tx_mw: 750.0,
                rx_mw: 300.0,
                sleep_mw: 1.0,
                wakeup_s: 0.010,
                rate_bps: 11_000_000.0,
            }),
            Technology::Irda => Some(PowerProfile {
                tx_mw: 45.0,
                rx_mw: 15.0,
                sleep_mw: 0.001,
                wakeup_s: 0.001,
                rate_bps: 4_000_000.0,
            }),
            Technology::Uwb => Some(PowerProfile {
                tx_mw: 250.0,
                rx_mw: 250.0,
                sleep_mw: 0.3,
                wakeup_s: 0.005,
                rate_bps: 110_000_000.0,
            }),
            _ => None, // Infrastructure-side technologies.
        }
    }
}

/// A periodic telemetry workload: `report_bytes` every `interval_s`,
/// with `overhead_bytes` of protocol framing per report.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryWorkload {
    /// Application payload per report.
    pub report_bytes: usize,
    /// Protocol overhead per report (headers, ACK listen).
    pub overhead_bytes: usize,
    /// Seconds between reports.
    pub interval_s: f64,
}

impl TelemetryWorkload {
    /// The classic sensor shape: 32 bytes every 60 s.
    pub fn sensor() -> Self {
        TelemetryWorkload {
            report_bytes: 32,
            overhead_bytes: 40,
            interval_s: 60.0,
        }
    }
}

/// Average power draw (mW) of a duty-cycled node running `work` on
/// `profile` — wake, transmit, listen briefly for the ACK, sleep.
pub fn average_power_mw(profile: &PowerProfile, work: &TelemetryWorkload) -> f64 {
    let bits = (work.report_bytes + work.overhead_bytes) as f64 * 8.0;
    let tx_s = bits / profile.rate_bps;
    // ACK/turnaround listen: 2 ms or one frame time, whichever is more.
    let rx_s = (bits / profile.rate_bps).max(0.002);
    let awake_s = profile.wakeup_s + tx_s + rx_s;
    let sleep_s = (work.interval_s - awake_s).max(0.0);
    let energy_mj = profile.wakeup_s * profile.rx_mw
        + tx_s * profile.tx_mw
        + rx_s * profile.rx_mw
        + sleep_s * profile.sleep_mw;
    energy_mj / work.interval_s
}

/// Battery life in days on a `capacity_mwh` cell (a CR2450 coin cell
/// stores ≈ 1860 mWh; a AA pair ≈ 7000 mWh).
pub fn battery_life_days(
    profile: &PowerProfile,
    work: &TelemetryWorkload,
    capacity_mwh: f64,
) -> f64 {
    capacity_mwh / average_power_mw(profile, work) / 24.0
}

/// Energy per delivered payload byte, microjoules.
pub fn energy_per_byte_uj(profile: &PowerProfile, work: &TelemetryWorkload) -> f64 {
    let avg_mw = average_power_mw(profile, work);
    let joules_per_interval = avg_mw / 1000.0 * work.interval_s;
    joules_per_interval * 1e6 / work.report_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wn_phy::modulation::PhyStandard;

    const COIN_CELL_MWH: f64 = 1860.0;
    const AA_PAIR_MWH: f64 = 7000.0;

    fn zb() -> PowerProfile {
        PowerProfile::for_technology(Technology::Zigbee).expect("profiled")
    }

    fn bt() -> PowerProfile {
        PowerProfile::for_technology(Technology::Bluetooth).expect("profiled")
    }

    fn wifi() -> PowerProfile {
        PowerProfile::for_technology(Technology::WiFi(PhyStandard::Dot11b)).expect("profiled")
    }

    #[test]
    fn infrastructure_technologies_have_no_node_profile() {
        assert!(PowerProfile::for_technology(Technology::Wimax).is_none());
        assert!(PowerProfile::for_technology(Technology::Satellite).is_none());
        assert!(PowerProfile::for_technology(Technology::Cellular).is_none());
    }

    #[test]
    fn zigbee_sensor_lasts_years_on_a_coin_cell() {
        // The §2.1 positioning: "low-cost, low-power" monitoring.
        let days = battery_life_days(&zb(), &TelemetryWorkload::sensor(), COIN_CELL_MWH);
        assert!(
            days > 2.0 * 365.0,
            "ZigBee coin-cell life {days:.0} days — expected years"
        );
    }

    #[test]
    fn wifi_sensor_drains_fast_by_comparison() {
        let z = battery_life_days(&zb(), &TelemetryWorkload::sensor(), AA_PAIR_MWH);
        let w = battery_life_days(&wifi(), &TelemetryWorkload::sensor(), AA_PAIR_MWH);
        assert!(
            z > w * 5.0,
            "ZigBee should outlast Wi-Fi many times over: {z:.0} vs {w:.0} days"
        );
    }

    #[test]
    fn power_ordering_matches_the_texts_positioning() {
        let work = TelemetryWorkload::sensor();
        let z = average_power_mw(&zb(), &work);
        let b = average_power_mw(&bt(), &work);
        let w = average_power_mw(&wifi(), &work);
        assert!(z < b, "ZigBee below Bluetooth: {z:.4} vs {b:.4} mW");
        assert!(b < w, "Bluetooth below Wi-Fi: {b:.4} vs {w:.4} mW");
    }

    #[test]
    fn sleep_dominates_at_long_intervals() {
        // At hourly reporting the average power approaches the sleep
        // floor — duty cycling works.
        let hourly = TelemetryWorkload {
            interval_s: 3600.0,
            ..TelemetryWorkload::sensor()
        };
        let p = average_power_mw(&zb(), &hourly);
        assert!(
            p < 0.01,
            "hourly ZigBee average {p:.5} mW should be sleep-dominated"
        );
        // At 1 s reporting the radio dominates.
        let fast = TelemetryWorkload {
            interval_s: 1.0,
            ..TelemetryWorkload::sensor()
        };
        let pf = average_power_mw(&zb(), &fast);
        assert!(
            pf > 10.0 * p,
            "fast reporting must cost much more: {pf:.4} vs {p:.5}"
        );
    }

    #[test]
    fn energy_per_byte_favours_faster_radios_for_bulk() {
        // Per *byte*, a fast radio can win (it sleeps sooner) — which is
        // why UWB exists for bulk transfer while ZigBee wins telemetry.
        let bulk = TelemetryWorkload {
            report_bytes: 100_000,
            overhead_bytes: 200,
            interval_s: 60.0,
        };
        let uwb = PowerProfile::for_technology(Technology::Uwb).expect("profiled");
        let z_cost = energy_per_byte_uj(&zb(), &bulk);
        let u_cost = energy_per_byte_uj(&uwb, &bulk);
        assert!(
            u_cost < z_cost,
            "UWB should be cheaper per bulk byte: {u_cost:.2} vs {z_cost:.2} µJ/B"
        );
    }

    #[test]
    fn average_power_bounded_by_profile_extremes() {
        let work = TelemetryWorkload::sensor();
        for p in [zb(), bt(), wifi()] {
            let avg = average_power_mw(&p, &work);
            assert!(avg >= p.sleep_mw * 0.99, "below sleep floor");
            assert!(avg <= p.tx_mw, "above TX ceiling");
        }
    }
}
