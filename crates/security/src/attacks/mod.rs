//! The attack suite behind §5's history: every breach the text
//! mentions, implemented against our own protocol code.
//!
//! - [`keystream`] — IV-collision keystream reuse (WEP's 24-bit IV).
//! - [`fms`] — Fluhrer–Mantin–Shamir weak-IV key recovery: the §5.2
//!   "FBI … cracked WEP passwords in minutes" demonstration.
//! - [`bitflip`] — CRC-linearity forgery: §5.1's attacker who "could
//!   recalculate the ordinary FCS … to hide their deliberate
//!   alteration".
//! - [`dictionary`] — offline dictionary attack on the WPA/WPA2 4-way
//!   handshake (why weak passphrases sink WPA-PSK).
//! - (WPS PIN search lives in [`crate::wps`].)

pub mod bitflip;
pub mod dictionary;
pub mod fms;
pub mod keystream;
