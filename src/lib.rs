//! `wireless-networks` — a full-stack simulation suite for the four
//! wireless network classes (WPAN / WLAN / WMAN / WWAN), the IEEE
//! 802.11 MAC and PHY, and the three generations of Wi-Fi security.
//!
//! This facade re-exports every workspace crate under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel, RNG, statistics |
//! | [`phy`] | bands, propagation, modulation/rate ladders, link budgets |
//! | [`crypto`] | RC4, AES, CCM, SHA-1/HMAC/PBKDF2, Michael, TKIP mixing |
//! | [`mac80211`] | bit-exact 802.11 frames + DCF/CSMA-CA medium simulation |
//! | [`net80211`] | STA/AP state machines, BSS/IBSS/ESS, DS, roaming |
//! | [`wpan`] | Bluetooth piconets/scatternets, ZigBee, IrDA, UWB |
//! | [`wman`] | WiMAX links and point-to-multipoint scheduling |
//! | [`wwan`] | cellular grids/reuse/Erlang-B + GEO satellite links |
//! | [`security`] | WEP/WPA/WPA2 with their attack suite |
//! | [`core`] | taxonomy, the comparison-table registry, experiment scenarios |
//! | [`check`] | deterministic simulation fuzzer with invariant oracles |
//!
//! # Quickstart
//!
//! ```
//! use wireless_networks::core::registry::Technology;
//!
//! // Measure Bluetooth's single-pair throughput from the simulator.
//! let row = Technology::Bluetooth.row();
//! assert!((row.measured_max_rate.bps() / 1e3 - 720.0).abs() < 100.0);
//! ```

#![forbid(unsafe_code)]

pub use wn_check as check;
pub use wn_core as core;
pub use wn_crypto as crypto;
pub use wn_mac80211 as mac80211;
pub use wn_net80211 as net80211;
pub use wn_phy as phy;
pub use wn_security as security;
pub use wn_sim as sim;
pub use wn_wman as wman;
pub use wn_wpan as wpan;
pub use wn_wwan as wwan;
