//! The distribution system (DS).
//!
//! §3.1: "A distribution system (DS) is the mechanism by which APs
//! exchange frames with one another and with wired networks … In nearly
//! all commercial products, wired Ethernet is used as the backbone
//! network technology." This module models exactly that: a wired
//! mailbox fabric connecting the APs of an ESS, plus a *portal* to the
//! wired LAN (frames whose destination is not any wireless STA leave
//! through the portal, and wired hosts can inject frames back in).

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use wn_mac80211::addr::MacAddr;
use wn_mac80211::sim::StationId;
use wn_sim::{SimDuration, SimTime};

/// An 802.3-ish frame travelling on the backbone.
#[derive(Clone, Debug, PartialEq)]
pub struct DsFrame {
    /// Final destination.
    pub da: MacAddr,
    /// Original source.
    pub sa: MacAddr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The shared state of one ESS's distribution system.
#[derive(Debug, Default)]
pub struct DistributionSystem {
    /// Which AP (by station id) currently serves each STA — updated on
    /// (re)association, which is how the ESS "appears as a single BSS …
    /// at any station" (§3.1).
    association: HashMap<MacAddr, StationId>,
    /// Pending backbone frames per AP.
    mailboxes: HashMap<StationId, Vec<DsFrame>>,
    /// Frames that left the wireless network through the portal.
    portal_out: Vec<(SimTime, DsFrame)>,
    /// Ethernet latency between any two backbone ports.
    pub wire_latency: SimDuration,
}

/// A cheap cloneable handle to a [`DistributionSystem`].
pub type DsHandle = Arc<Mutex<DistributionSystem>>;

/// Creates a fresh DS handle with the given wire latency.
pub fn new_ds(wire_latency: SimDuration) -> DsHandle {
    Arc::new(Mutex::new(DistributionSystem {
        wire_latency,
        ..DistributionSystem::default()
    }))
}

impl DistributionSystem {
    /// Registers (or moves) a STA's serving AP. Returns the previous
    /// serving AP if this was a roam.
    pub fn associate(&mut self, sta: MacAddr, ap: StationId) -> Option<StationId> {
        let prev = self.association.insert(sta, ap);
        prev.filter(|&p| p != ap)
    }

    /// Removes a STA (disassociation).
    pub fn disassociate(&mut self, sta: MacAddr) {
        self.association.remove(&sta);
    }

    /// The AP currently serving `sta`, if any.
    pub fn serving_ap(&self, sta: MacAddr) -> Option<StationId> {
        self.association.get(&sta).copied()
    }

    /// Number of STAs registered across the ESS.
    pub fn station_count(&self) -> usize {
        self.association.len()
    }

    /// Routes a frame entering the DS from AP `from`.
    ///
    /// Returns the AP that must be signalled (its mailbox now has the
    /// frame), or `None` when the frame left through the portal or was
    /// consumed. Broadcast fans out to every other AP (all are returned
    /// via the `broadcast_targets` path instead — use
    /// [`DistributionSystem::route_broadcast`]).
    pub fn route(&mut self, now: SimTime, from: StationId, frame: DsFrame) -> Option<StationId> {
        match self.association.get(&frame.da) {
            Some(&ap) if ap != from => {
                self.mailboxes.entry(ap).or_default().push(frame);
                Some(ap)
            }
            Some(_) => None, // Destination is on the originating AP; it handles it locally.
            None => {
                // Unknown wireless destination ⇒ exits via the portal to
                // the wired LAN (§3.2: the AP "convert[s] airwave data
                // into wired Ethernet data").
                self.portal_out.push((now, frame));
                None
            }
        }
    }

    /// Routes a broadcast: copies into every other AP's mailbox and the
    /// portal; returns the APs to signal.
    pub fn route_broadcast(
        &mut self,
        now: SimTime,
        from: StationId,
        frame: DsFrame,
    ) -> Vec<StationId> {
        let mut targets: Vec<StationId> = self
            .association
            .values()
            .copied()
            .filter(|&ap| ap != from)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for &ap in &targets {
            self.mailboxes.entry(ap).or_default().push(frame.clone());
        }
        self.portal_out.push((now, frame));
        targets
    }

    /// Injects a frame from the wired LAN toward a wireless STA;
    /// returns the serving AP to signal, or `None` if the STA is
    /// unknown.
    pub fn inject_from_portal(&mut self, frame: DsFrame) -> Option<StationId> {
        let ap = self.association.get(&frame.da).copied()?;
        self.mailboxes.entry(ap).or_default().push(frame);
        Some(ap)
    }

    /// Drains the mailbox of `ap`.
    pub fn drain(&mut self, ap: StationId) -> Vec<DsFrame> {
        self.mailboxes.remove(&ap).unwrap_or_default()
    }

    /// Frames delivered to the wired LAN so far.
    pub fn portal_frames(&self) -> &[(SimTime, DsFrame)] {
        &self.portal_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(da: u32, sa: u32) -> DsFrame {
        DsFrame {
            da: MacAddr::station(da),
            sa: MacAddr::station(sa),
            payload: vec![1, 2, 3],
        }
    }

    #[test]
    fn routes_between_aps() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        ds.associate(MacAddr::station(2), 20);
        // STA1 (on AP10) → STA2 (on AP20).
        let target = ds.route(SimTime::ZERO, 10, f(2, 1));
        assert_eq!(target, Some(20));
        assert_eq!(ds.drain(20), vec![f(2, 1)]);
        assert!(ds.drain(20).is_empty(), "drain empties the mailbox");
    }

    #[test]
    fn same_ap_destination_not_mailboxed() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        ds.associate(MacAddr::station(2), 10);
        assert_eq!(ds.route(SimTime::ZERO, 10, f(2, 1)), None);
        assert!(ds.drain(10).is_empty());
    }

    #[test]
    fn unknown_destination_exits_portal() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        let wired_host = DsFrame {
            da: MacAddr([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]),
            sa: MacAddr::station(1),
            payload: b"to the internet".to_vec(),
        };
        assert_eq!(
            ds.route(SimTime::from_secs(1), 10, wired_host.clone()),
            None
        );
        assert_eq!(ds.portal_frames().len(), 1);
        assert_eq!(ds.portal_frames()[0].1, wired_host);
    }

    #[test]
    fn portal_injection_reaches_serving_ap() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(7), 30);
        let down = DsFrame {
            da: MacAddr::station(7),
            sa: MacAddr([0x00, 1, 2, 3, 4, 5]),
            payload: b"web page".to_vec(),
        };
        assert_eq!(ds.inject_from_portal(down.clone()), Some(30));
        assert_eq!(ds.drain(30), vec![down]);
        // Unknown STA: nowhere to go.
        assert_eq!(ds.inject_from_portal(f(99, 1)), None);
    }

    #[test]
    fn roaming_moves_association() {
        // Fig. 1.10: the STA moves from AP A to AP B; the DS must
        // subsequently deliver via B.
        let mut ds = DistributionSystem::default();
        assert_eq!(ds.associate(MacAddr::station(1), 10), None);
        let prev = ds.associate(MacAddr::station(1), 20);
        assert_eq!(prev, Some(10), "roam reports the old AP");
        assert_eq!(ds.serving_ap(MacAddr::station(1)), Some(20));
        assert_eq!(ds.route(SimTime::ZERO, 30, f(1, 9)), Some(20));
    }

    #[test]
    fn reassociation_to_same_ap_is_not_a_roam() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        assert_eq!(ds.associate(MacAddr::station(1), 10), None);
    }

    #[test]
    fn broadcast_fans_out() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        ds.associate(MacAddr::station(2), 20);
        ds.associate(MacAddr::station(3), 30);
        ds.associate(MacAddr::station(4), 20);
        let bc = DsFrame {
            da: MacAddr::BROADCAST,
            sa: MacAddr::station(1),
            payload: vec![9],
        };
        let mut targets = ds.route_broadcast(SimTime::ZERO, 10, bc);
        targets.sort_unstable();
        assert_eq!(targets, vec![20, 30], "every other AP exactly once");
        assert_eq!(ds.drain(20).len(), 1);
        assert_eq!(ds.drain(30).len(), 1);
        assert_eq!(
            ds.portal_frames().len(),
            1,
            "broadcast also exits the portal"
        );
    }

    #[test]
    fn disassociate_removes() {
        let mut ds = DistributionSystem::default();
        ds.associate(MacAddr::station(1), 10);
        ds.disassociate(MacAddr::station(1));
        assert_eq!(ds.serving_ap(MacAddr::station(1)), None);
        assert_eq!(ds.station_count(), 0);
    }
}
