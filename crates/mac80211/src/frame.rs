//! The bit-exact IEEE 802.11 MAC frame codec of §4.2 / Fig. 1.12.
//!
//! "The MAC frame format comprises a set of nine fields that occur in a
//! fixed order in all frames": Frame Control, Duration/ID, four Address
//! fields, Sequence Control, Frame Body and FCS. Every subfield the text
//! enumerates — Protocol Version, Type/Subtype, To DS/From DS, More
//! Fragments, Retry, Power Management, More Data, WEP, Order, the
//! fragment/sequence numbers — is represented and serialised here
//! exactly as on the air, and the FCS is a real CRC-32 over header and
//! body.

use crate::addr::MacAddr;
use wn_crypto::crc32;

/// Frame type — "There are three different frame type fields: control,
/// data, and management" (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Management frames (association, beacons, authentication…).
    Management,
    /// Control frames (RTS/CTS/ACK/PS-Poll).
    Control,
    /// Data frames.
    Data,
}

impl FrameType {
    fn code(self) -> u16 {
        match self {
            FrameType::Management => 0,
            FrameType::Control => 1,
            FrameType::Data => 2,
        }
    }
}

/// Frame subtype — "multiple subtype fields for each frame type".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Subtype {
    // Management.
    /// Association request.
    AssocReq,
    /// Association response.
    AssocResp,
    /// Reassociation request (roaming within an ESS).
    ReassocReq,
    /// Reassociation response.
    ReassocResp,
    /// Probe request (active scanning).
    ProbeReq,
    /// Probe response.
    ProbeResp,
    /// Beacon.
    Beacon,
    /// Announcement traffic indication message (IBSS power save).
    Atim,
    /// Disassociation.
    Disassoc,
    /// Authentication.
    Auth,
    /// Deauthentication.
    Deauth,
    // Control.
    /// Power-save poll — the Duration/ID field carries an AID.
    PsPoll,
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
    /// Acknowledgement.
    Ack,
    /// Block Ack Request — solicits a block ack for an A-MPDU window
    /// starting at the carried sequence number (802.11e/n).
    BlockAckReq,
    /// Compressed Block Ack — a starting sequence number plus a 64-bit
    /// bitmap acknowledging individual MPDUs of an aggregate.
    BlockAck,
    // Data.
    /// Plain data.
    Data,
    /// Data-less null frame (power-management signalling).
    NullData,
    /// QoS data — an access-category-tagged data frame; in this model
    /// also the carrier of A-MPDU aggregates.
    QosData,
}

impl Subtype {
    /// The `(type, subtype)` code pair on the air.
    pub fn codes(self) -> (FrameType, u16) {
        use Subtype::*;
        match self {
            AssocReq => (FrameType::Management, 0),
            AssocResp => (FrameType::Management, 1),
            ReassocReq => (FrameType::Management, 2),
            ReassocResp => (FrameType::Management, 3),
            ProbeReq => (FrameType::Management, 4),
            ProbeResp => (FrameType::Management, 5),
            Beacon => (FrameType::Management, 8),
            Atim => (FrameType::Management, 9),
            Disassoc => (FrameType::Management, 10),
            Auth => (FrameType::Management, 11),
            Deauth => (FrameType::Management, 12),
            BlockAckReq => (FrameType::Control, 8),
            BlockAck => (FrameType::Control, 9),
            PsPoll => (FrameType::Control, 10),
            Rts => (FrameType::Control, 11),
            Cts => (FrameType::Control, 12),
            Ack => (FrameType::Control, 13),
            Data => (FrameType::Data, 0),
            NullData => (FrameType::Data, 4),
            QosData => (FrameType::Data, 8),
        }
    }

    fn from_codes(ty: u16, sub: u16) -> Option<Subtype> {
        use Subtype::*;
        Some(match (ty, sub) {
            (0, 0) => AssocReq,
            (0, 1) => AssocResp,
            (0, 2) => ReassocReq,
            (0, 3) => ReassocResp,
            (0, 4) => ProbeReq,
            (0, 5) => ProbeResp,
            (0, 8) => Beacon,
            (0, 9) => Atim,
            (0, 10) => Disassoc,
            (0, 11) => Auth,
            (0, 12) => Deauth,
            (1, 8) => BlockAckReq,
            (1, 9) => BlockAck,
            (1, 10) => PsPoll,
            (1, 11) => Rts,
            (1, 12) => Cts,
            (1, 13) => Ack,
            (2, 0) => Data,
            (2, 4) => NullData,
            (2, 8) => QosData,
            _ => return None,
        })
    }

    /// The frame type this subtype belongs to.
    pub fn frame_type(self) -> FrameType {
        self.codes().0
    }

    /// `true` for frames the receiver must acknowledge when unicast.
    pub fn needs_ack(self) -> bool {
        !matches!(
            self,
            Subtype::Rts | Subtype::Cts | Subtype::Ack | Subtype::PsPoll
        ) && self.frame_type() != FrameType::Control
    }
}

/// The 16-bit Frame Control field with all §4.2 subfields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameControl {
    /// "Protocol Version provides the current version of the 802.11
    /// protocol used" — always 0 today.
    pub protocol_version: u8,
    /// Type + subtype, which "determines the function of the frame".
    pub subtype: Subtype,
    /// "indicates whether the frame is going to … the DS".
    pub to_ds: bool,
    /// "… or exiting from the DS".
    pub from_ds: bool,
    /// "indicates whether more fragments of the frame … are to follow".
    pub more_fragments: bool,
    /// "indicates whether or not the frame … is being retransmitted".
    pub retry: bool,
    /// "indicates whether the sending STA is in active mode or
    /// power-save mode".
    pub power_management: bool,
    /// "indicates to a STA in power-save mode that the AP has more
    /// frames to send".
    pub more_data: bool,
    /// "indicates whether or not encryption and authentication are used
    /// in the frame" (the WEP / Protected Frame bit).
    pub protected: bool,
    /// "indicates that all received data frames must be processed in
    /// order".
    pub order: bool,
}

impl FrameControl {
    /// A plain frame control for the given subtype, all flags clear.
    pub fn new(subtype: Subtype) -> Self {
        FrameControl {
            protocol_version: 0,
            subtype,
            to_ds: false,
            from_ds: false,
            more_fragments: false,
            retry: false,
            power_management: false,
            more_data: false,
            protected: false,
            order: false,
        }
    }

    /// Packs into the on-air 16-bit little-endian value.
    pub fn pack(self) -> u16 {
        let (ty, sub) = self.subtype.codes();
        (self.protocol_version as u16 & 0b11)
            | (ty.code() << 2)
            | (sub << 4)
            | ((self.to_ds as u16) << 8)
            | ((self.from_ds as u16) << 9)
            | ((self.more_fragments as u16) << 10)
            | ((self.retry as u16) << 11)
            | ((self.power_management as u16) << 12)
            | ((self.more_data as u16) << 13)
            | ((self.protected as u16) << 14)
            | ((self.order as u16) << 15)
    }

    /// Unpacks from the on-air value.
    pub fn unpack(v: u16) -> Result<Self, FrameError> {
        let version = (v & 0b11) as u8;
        if version != 0 {
            return Err(FrameError::UnsupportedVersion(version));
        }
        let ty = (v >> 2) & 0b11;
        let sub = (v >> 4) & 0b1111;
        let subtype = Subtype::from_codes(ty, sub).ok_or(FrameError::ReservedType { ty, sub })?;
        Ok(FrameControl {
            protocol_version: version,
            subtype,
            to_ds: v & (1 << 8) != 0,
            from_ds: v & (1 << 9) != 0,
            more_fragments: v & (1 << 10) != 0,
            retry: v & (1 << 11) != 0,
            power_management: v & (1 << 12) != 0,
            more_data: v & (1 << 13) != 0,
            protected: v & (1 << 14) != 0,
            order: v & (1 << 15) != 0,
        })
    }
}

/// The Sequence Control field: 4-bit fragment number + 12-bit sequence
/// number (§4.2: wraps "until reaching 4095, when it then begins at
/// zero again").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct SequenceControl {
    /// Fragment number within a fragmented MSDU (0–15).
    pub fragment: u8,
    /// Sequence number (0–4095).
    pub sequence: u16,
}

impl SequenceControl {
    /// Packs into the on-air 16-bit value.
    pub fn pack(self) -> u16 {
        (self.fragment as u16 & 0x0F) | (self.sequence << 4)
    }

    /// Unpacks from the on-air value.
    pub fn unpack(v: u16) -> Self {
        SequenceControl {
            fragment: (v & 0x0F) as u8,
            sequence: v >> 4,
        }
    }
}

/// A 12-bit sequence-number counter with the §4.2 wrap behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequenceCounter(u16);

impl SequenceCounter {
    /// Returns the current number and advances (wraps at 4095 → 0).
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u16 {
        let v = self.0;
        self.0 = (self.0 + 1) & 0x0FFF;
        v
    }
}

/// Errors decoding a frame from bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the minimal frame of its kind.
    TooShort {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// FCS mismatch — the frame was corrupted in flight.
    BadFcs {
        /// FCS carried in the frame.
        sent: u32,
        /// FCS computed over the received bits.
        computed: u32,
    },
    /// Protocol version other than zero.
    UnsupportedVersion(u8),
    /// Reserved (type, subtype) combination.
    ReservedType {
        /// Type code.
        ty: u16,
        /// Subtype code.
        sub: u16,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { need, got } => write!(f, "frame too short: {got} < {need}"),
            FrameError::BadFcs { sent, computed } => {
                write!(
                    f,
                    "FCS mismatch: sent {sent:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::ReservedType { ty, sub } => {
                write!(f, "reserved type/subtype {ty}/{sub}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A complete MAC frame (pre-FCS; the FCS is produced on serialisation
/// and checked on parse).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Frame Control field.
    pub fc: FrameControl,
    /// Duration (µs of NAV reservation) or AID for PS-Poll.
    pub duration_id: u16,
    /// Address 1 — always the receiver address (RA).
    pub addr1: MacAddr,
    /// Address 2 — transmitter address (absent on CTS/ACK).
    pub addr2: Option<MacAddr>,
    /// Address 3 — BSSID/SA/DA depending on DS bits (data/mgmt only).
    pub addr3: Option<MacAddr>,
    /// Sequence Control (data/mgmt only).
    pub seq: Option<SequenceControl>,
    /// Address 4 — only on ToDS+FromDS (wireless DS) frames.
    pub addr4: Option<MacAddr>,
    /// Frame body ("the data or information included in either
    /// management type or data type frames").
    pub body: Vec<u8>,
}

impl Frame {
    // ----- constructors for the frames the simulator exchanges -----

    /// An RTS control frame.
    pub fn rts(ra: MacAddr, ta: MacAddr, duration_us: u16) -> Frame {
        Frame {
            fc: FrameControl::new(Subtype::Rts),
            duration_id: duration_us,
            addr1: ra,
            addr2: Some(ta),
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        }
    }

    /// A CTS control frame.
    pub fn cts(ra: MacAddr, duration_us: u16) -> Frame {
        Frame {
            fc: FrameControl::new(Subtype::Cts),
            duration_id: duration_us,
            addr1: ra,
            addr2: None,
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        }
    }

    /// An ACK control frame.
    pub fn ack(ra: MacAddr) -> Frame {
        Frame {
            fc: FrameControl::new(Subtype::Ack),
            duration_id: 0,
            addr1: ra,
            addr2: None,
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        }
    }

    /// A PS-Poll control frame; §4.2: "the field contains the
    /// association identity (AID) of the transmitting STA".
    pub fn ps_poll(bssid: MacAddr, ta: MacAddr, aid: u16) -> Frame {
        Frame {
            fc: FrameControl::new(Subtype::PsPoll),
            // AIDs are sent with the two MSBs set on the air.
            duration_id: aid | 0xC000,
            addr1: bssid,
            addr2: Some(ta),
            addr3: None,
            seq: None,
            addr4: None,
            body: Vec::new(),
        }
    }

    /// A Block Ack Request control frame soliciting a block ack for
    /// the A-MPDU window starting at `ssn`.
    pub fn block_ack_req(ra: MacAddr, ta: MacAddr, duration_us: u16, ssn: u16) -> Frame {
        Frame {
            fc: FrameControl::new(Subtype::BlockAckReq),
            duration_id: duration_us,
            addr1: ra,
            addr2: Some(ta),
            addr3: None,
            seq: None,
            addr4: None,
            body: (ssn & 0x0FFF).to_le_bytes().to_vec(),
        }
    }

    /// A compressed Block Ack control frame: the starting sequence
    /// number plus a 64-bit bitmap where bit `k` acknowledges sequence
    /// `ssn + k`.
    pub fn block_ack(ra: MacAddr, ta: MacAddr, ssn: u16, bitmap: u64) -> Frame {
        let mut body = Vec::with_capacity(10);
        body.extend_from_slice(&(ssn & 0x0FFF).to_le_bytes());
        body.extend_from_slice(&bitmap.to_le_bytes());
        Frame {
            fc: FrameControl::new(Subtype::BlockAck),
            duration_id: 0,
            addr1: ra,
            addr2: Some(ta),
            addr3: None,
            seq: None,
            addr4: None,
            body,
        }
    }

    /// A data frame inside a BSS or IBSS, DS bits per §4.2's table.
    pub fn data(
        ds: DsBits,
        da: MacAddr,
        sa: MacAddr,
        bssid: MacAddr,
        seq: SequenceControl,
        body: Vec<u8>,
    ) -> Frame {
        let (addr1, addr2, addr3) = match ds {
            DsBits::Ibss => (da, sa, bssid),
            DsBits::ToAp => (bssid, sa, da),
            DsBits::FromAp => (da, bssid, sa),
        };
        let mut fc = FrameControl::new(Subtype::Data);
        fc.to_ds = matches!(ds, DsBits::ToAp);
        fc.from_ds = matches!(ds, DsBits::FromAp);
        Frame {
            fc,
            duration_id: 0,
            addr1,
            addr2: Some(addr2),
            addr3: Some(addr3),
            seq: Some(seq),
            addr4: None,
            body,
        }
    }

    /// A management frame (beacon, association, authentication…).
    pub fn management(
        subtype: Subtype,
        ra: MacAddr,
        ta: MacAddr,
        bssid: MacAddr,
        seq: SequenceControl,
        body: Vec<u8>,
    ) -> Frame {
        debug_assert_eq!(subtype.frame_type(), FrameType::Management);
        Frame {
            fc: FrameControl::new(subtype),
            duration_id: 0,
            addr1: ra,
            addr2: Some(ta),
            addr3: Some(bssid),
            seq: Some(seq),
            addr4: None,
            body,
        }
    }

    // ----- address semantics (§4.2 Address Fields) -----

    /// Receiver address — "the next immediate STA on the wireless
    /// medium to receive the frame".
    pub fn receiver(&self) -> MacAddr {
        self.addr1
    }

    /// Transmitter address — "the STA that transmitted the frame onto
    /// the wireless medium" (absent for CTS/ACK).
    pub fn transmitter(&self) -> Option<MacAddr> {
        self.addr2
    }

    /// Destination address — "the final destination to receive the
    /// frame".
    pub fn destination(&self) -> MacAddr {
        match (self.fc.to_ds, self.fc.from_ds) {
            (false, _) => self.addr1,
            (true, false) => self.addr3.unwrap_or(self.addr1),
            (true, true) => self.addr3.unwrap_or(self.addr1),
        }
    }

    /// Source address — "the original source that initially created and
    /// transmitted the frame".
    pub fn source(&self) -> Option<MacAddr> {
        match (self.fc.to_ds, self.fc.from_ds) {
            (false, false) => self.addr2,
            (true, false) => self.addr2,
            (false, true) => self.addr3,
            (true, true) => self.addr4,
        }
    }

    /// The BSSID for non-WDS frames.
    pub fn bssid(&self) -> Option<MacAddr> {
        match (self.fc.to_ds, self.fc.from_ds) {
            (false, false) => self.addr3,
            (true, false) => Some(self.addr1),
            (false, true) => self.addr2,
            (true, true) => None,
        }
    }

    /// The AID carried in a PS-Poll.
    pub fn ps_poll_aid(&self) -> Option<u16> {
        (self.fc.subtype == Subtype::PsPoll).then_some(self.duration_id & 0x3FFF)
    }

    /// The starting sequence number carried by a BlockAck or
    /// BlockAckReq (`None` for other subtypes or a truncated body).
    pub fn ba_ssn(&self) -> Option<u16> {
        match self.fc.subtype {
            Subtype::BlockAck | Subtype::BlockAckReq if self.body.len() >= 2 => {
                Some(u16::from_le_bytes([self.body[0], self.body[1]]) & 0x0FFF)
            }
            _ => None,
        }
    }

    /// The compressed 64-bit acknowledgement bitmap of a BlockAck
    /// (`None` for other subtypes or a truncated body).
    pub fn ba_bitmap(&self) -> Option<u64> {
        match self.fc.subtype {
            Subtype::BlockAck if self.body.len() >= 10 => Some(u64::from_le_bytes(
                self.body[2..10].try_into().expect("8 bytes"),
            )),
            _ => None,
        }
    }

    // ----- codec -----

    /// Header length in bytes for this frame's kind.
    pub fn header_len(&self) -> usize {
        match self.fc.subtype {
            Subtype::Cts | Subtype::Ack => 10,
            Subtype::Rts | Subtype::PsPoll | Subtype::BlockAckReq | Subtype::BlockAck => 16,
            _ => {
                if self.addr4.is_some() {
                    30
                } else {
                    24
                }
            }
        }
    }

    /// Total on-air length including FCS.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.body.len() + 4
    }

    /// Serialises to on-air bytes, appending a correct FCS.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.write_into(&mut out);
        out
    }

    /// Serialises into `out` (appending), including a correct FCS.
    ///
    /// The FCS covers only this frame's bytes, so appending to a
    /// non-empty buffer produces the same wire image as [`to_bytes`]
    /// would at that offset. Lets hot paths reuse one allocation across
    /// many serialisations.
    ///
    /// [`to_bytes`]: Frame::to_bytes
    pub fn write_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.reserve(self.wire_len());
        out.extend_from_slice(&self.fc.pack().to_le_bytes());
        out.extend_from_slice(&self.duration_id.to_le_bytes());
        out.extend_from_slice(&self.addr1.0);
        match self.fc.subtype {
            Subtype::Cts | Subtype::Ack => {}
            Subtype::Rts | Subtype::PsPoll => {
                out.extend_from_slice(&self.addr2.expect("RTS/PS-Poll carry a TA").0);
            }
            Subtype::BlockAckReq | Subtype::BlockAck => {
                out.extend_from_slice(&self.addr2.expect("BAR/BA carry a TA").0);
                out.extend_from_slice(&self.body);
            }
            _ => {
                out.extend_from_slice(&self.addr2.unwrap_or(MacAddr::ZERO).0);
                out.extend_from_slice(&self.addr3.unwrap_or(MacAddr::ZERO).0);
                out.extend_from_slice(&self.seq.unwrap_or_default().pack().to_le_bytes());
                if let Some(a4) = self.addr4 {
                    out.extend_from_slice(&a4.0);
                }
                out.extend_from_slice(&self.body);
            }
        }
        let fcs = crc32(&out[start..]);
        out.extend_from_slice(&fcs.to_le_bytes());
    }

    /// Parses on-air bytes, verifying the FCS — "The receiving STA then
    /// uses the same CRC calculation … to verify whether or not any
    /// errors occurred in the frame during the transmission" (§4.2).
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < 14 {
            return Err(FrameError::TooShort {
                need: 14,
                got: bytes.len(),
            });
        }
        let (payload, fcs_bytes) = bytes.split_at(bytes.len() - 4);
        let sent = u32::from_le_bytes(fcs_bytes.try_into().expect("4 bytes"));
        let computed = crc32(payload);
        if sent != computed {
            return Err(FrameError::BadFcs { sent, computed });
        }
        let fc = FrameControl::unpack(u16::from_le_bytes([payload[0], payload[1]]))?;
        let duration_id = u16::from_le_bytes([payload[2], payload[3]]);
        let take_addr = |off: usize| -> Result<MacAddr, FrameError> {
            if payload.len() < off + 6 {
                return Err(FrameError::TooShort {
                    need: off + 6 + 4,
                    got: bytes.len(),
                });
            }
            Ok(MacAddr(payload[off..off + 6].try_into().expect("6 bytes")))
        };
        let addr1 = take_addr(4)?;
        match fc.subtype {
            Subtype::Cts | Subtype::Ack => Ok(Frame {
                fc,
                duration_id,
                addr1,
                addr2: None,
                addr3: None,
                seq: None,
                addr4: None,
                body: Vec::new(),
            }),
            Subtype::Rts | Subtype::PsPoll => Ok(Frame {
                fc,
                duration_id,
                addr1,
                addr2: Some(take_addr(10)?),
                addr3: None,
                seq: None,
                addr4: None,
                body: Vec::new(),
            }),
            Subtype::BlockAckReq | Subtype::BlockAck => Ok(Frame {
                fc,
                duration_id,
                addr1,
                addr2: Some(take_addr(10)?),
                addr3: None,
                seq: None,
                addr4: None,
                body: payload[16..].to_vec(),
            }),
            _ => {
                let addr2 = take_addr(10)?;
                let addr3 = take_addr(16)?;
                if payload.len() < 24 {
                    return Err(FrameError::TooShort {
                        need: 28,
                        got: bytes.len(),
                    });
                }
                let seq = SequenceControl::unpack(u16::from_le_bytes([payload[22], payload[23]]));
                let has_a4 = fc.to_ds && fc.from_ds;
                let (addr4, body_off) = if has_a4 {
                    (Some(take_addr(24)?), 30)
                } else {
                    (None, 24)
                };
                Ok(Frame {
                    fc,
                    duration_id,
                    addr1,
                    addr2: Some(addr2),
                    addr3: Some(addr3),
                    seq: Some(seq),
                    addr4,
                    body: payload[body_off..].to_vec(),
                })
            }
        }
    }
}

/// The §3.2 / §4.2 DS-bit configurations for data frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DsBits {
    /// Ad hoc, STA↔STA directly (ToDS=0, FromDS=0).
    Ibss,
    /// STA → AP (ToDS=1, FromDS=0).
    ToAp,
    /// AP → STA (ToDS=0, FromDS=1).
    FromAp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta(i: u32) -> MacAddr {
        MacAddr::station(i)
    }

    #[test]
    fn frame_control_pack_unpack_all_flags() {
        let mut fc = FrameControl::new(Subtype::Data);
        fc.to_ds = true;
        fc.retry = true;
        fc.power_management = true;
        fc.more_data = true;
        fc.protected = true;
        fc.order = true;
        fc.more_fragments = true;
        let packed = fc.pack();
        let back = FrameControl::unpack(packed).unwrap();
        assert_eq!(back, fc);
    }

    #[test]
    fn frame_control_known_encoding() {
        // Beacon: type 0 subtype 8 → bits 0b1000_00_00 = 0x80.
        assert_eq!(FrameControl::new(Subtype::Beacon).pack(), 0x0080);
        // ACK: type 1 subtype 13 → 0b1101_01_00 = 0xD4.
        assert_eq!(FrameControl::new(Subtype::Ack).pack(), 0x00D4);
        // RTS → 0xB4.
        assert_eq!(FrameControl::new(Subtype::Rts).pack(), 0x00B4);
        // CTS → 0xC4.
        assert_eq!(FrameControl::new(Subtype::Cts).pack(), 0x00C4);
        // Plain data: type 2 → 0x08.
        assert_eq!(FrameControl::new(Subtype::Data).pack(), 0x0008);
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(
            FrameControl::unpack(0x0081),
            Err(FrameError::UnsupportedVersion(1))
        );
    }

    #[test]
    fn reserved_subtype_rejected() {
        // Type 3 is reserved entirely.
        let v = 0b11 << 2;
        assert!(matches!(
            FrameControl::unpack(v),
            Err(FrameError::ReservedType { .. })
        ));
    }

    #[test]
    fn sequence_control_pack_unpack() {
        let sc = SequenceControl {
            fragment: 5,
            sequence: 4095,
        };
        assert_eq!(SequenceControl::unpack(sc.pack()), sc);
        assert_eq!(sc.pack() >> 4, 4095);
        assert_eq!(sc.pack() & 0xF, 5);
    }

    #[test]
    fn sequence_counter_wraps_at_4095() {
        let mut c = SequenceCounter::default();
        for expect in 0..=4095u16 {
            assert_eq!(c.next(), expect);
        }
        assert_eq!(c.next(), 0, "§4.2: wraps to zero after 4095");
    }

    #[test]
    fn data_frame_roundtrip() {
        let f = Frame::data(
            DsBits::ToAp,
            sta(9),
            sta(1),
            MacAddr::access_point(0),
            SequenceControl {
                fragment: 0,
                sequence: 77,
            },
            b"hello over the air".to_vec(),
        );
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 24 + 18 + 4);
        let back = Frame::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn write_into_matches_to_bytes_and_appends() {
        let f = Frame::data(
            DsBits::ToAp,
            sta(9),
            sta(1),
            MacAddr::access_point(0),
            SequenceControl {
                fragment: 0,
                sequence: 77,
            },
            b"hello over the air".to_vec(),
        );
        let ack = Frame::ack(sta(4));

        let mut buf = Vec::new();
        f.write_into(&mut buf);
        assert_eq!(buf, f.to_bytes());

        // Appending a second frame leaves the first intact and yields
        // exactly the concatenation of the two wire images.
        ack.write_into(&mut buf);
        let mut expect = f.to_bytes();
        expect.extend_from_slice(&ack.to_bytes());
        assert_eq!(buf, expect);
        assert_eq!(
            Frame::from_bytes(&buf[f.wire_len()..]).unwrap(),
            ack,
            "appended frame parses from its own region"
        );
    }

    #[test]
    fn control_frames_roundtrip_and_sizes() {
        let rts = Frame::rts(sta(2), sta(1), 300);
        assert_eq!(rts.to_bytes().len(), 20);
        assert_eq!(Frame::from_bytes(&rts.to_bytes()).unwrap(), rts);

        let cts = Frame::cts(sta(1), 250);
        assert_eq!(cts.to_bytes().len(), 14);
        assert_eq!(Frame::from_bytes(&cts.to_bytes()).unwrap(), cts);

        let ack = Frame::ack(sta(1));
        assert_eq!(ack.to_bytes().len(), 14);
        assert_eq!(Frame::from_bytes(&ack.to_bytes()).unwrap(), ack);

        let poll = Frame::ps_poll(MacAddr::access_point(0), sta(3), 7);
        assert_eq!(poll.to_bytes().len(), 20);
        let back = Frame::from_bytes(&poll.to_bytes()).unwrap();
        assert_eq!(back.ps_poll_aid(), Some(7));
    }

    #[test]
    fn corrupted_bits_fail_fcs() {
        let f = Frame::data(
            DsBits::Ibss,
            sta(2),
            sta(1),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            vec![0xAB; 64],
        );
        let mut bytes = f.to_bytes();
        for pos in [0usize, 5, 20, 40, bytes.len() - 5] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            assert!(
                matches!(
                    Frame::from_bytes(&corrupted),
                    Err(FrameError::BadFcs { .. })
                ),
                "corruption at {pos} not caught"
            );
        }
        // Corrupting the FCS itself is also caught.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Frame::from_bytes(&bytes),
            Err(FrameError::BadFcs { .. })
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = Frame::ack(sta(1));
        let bytes = f.to_bytes();
        assert!(matches!(
            Frame::from_bytes(&bytes[..10]),
            Err(FrameError::TooShort { .. }) | Err(FrameError::BadFcs { .. })
        ));
        assert!(matches!(
            Frame::from_bytes(&[]),
            Err(FrameError::TooShort { .. })
        ));
    }

    #[test]
    fn address_semantics_ibss() {
        // §4.2 table: IBSS → addr1=DA, addr2=SA, addr3=BSSID.
        let bssid = MacAddr::random_ibss_bssid(7);
        let f = Frame::data(
            DsBits::Ibss,
            sta(2),
            sta(1),
            bssid,
            SequenceControl::default(),
            vec![],
        );
        assert_eq!(f.destination(), sta(2));
        assert_eq!(f.source(), Some(sta(1)));
        assert_eq!(f.bssid(), Some(bssid));
        assert_eq!(f.receiver(), sta(2));
    }

    #[test]
    fn address_semantics_to_ap() {
        // ToDS: addr1=BSSID(RA), addr2=SA(TA), addr3=DA.
        let ap = MacAddr::access_point(0);
        let f = Frame::data(
            DsBits::ToAp,
            sta(2),
            sta(1),
            ap,
            SequenceControl::default(),
            vec![],
        );
        assert_eq!(f.receiver(), ap);
        assert_eq!(f.destination(), sta(2));
        assert_eq!(f.source(), Some(sta(1)));
        assert_eq!(f.bssid(), Some(ap));
        assert!(f.fc.to_ds && !f.fc.from_ds);
    }

    #[test]
    fn address_semantics_from_ap() {
        // FromDS: addr1=DA(RA), addr2=BSSID(TA), addr3=SA.
        let ap = MacAddr::access_point(0);
        let f = Frame::data(
            DsBits::FromAp,
            sta(2),
            sta(1),
            ap,
            SequenceControl::default(),
            vec![],
        );
        assert_eq!(f.receiver(), sta(2));
        assert_eq!(f.destination(), sta(2));
        assert_eq!(f.source(), Some(sta(1)));
        assert_eq!(f.bssid(), Some(ap));
        assert!(!f.fc.to_ds && f.fc.from_ds);
    }

    #[test]
    fn wds_four_address_roundtrip() {
        let mut f = Frame::data(
            DsBits::ToAp,
            sta(2),
            sta(1),
            MacAddr::access_point(0),
            SequenceControl {
                fragment: 1,
                sequence: 9,
            },
            b"bridged".to_vec(),
        );
        f.fc.from_ds = true;
        f.addr4 = Some(sta(1));
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 30 + 7 + 4);
        let back = Frame::from_bytes(&bytes).unwrap();
        assert_eq!(back.addr4, Some(sta(1)));
        assert_eq!(back.source(), Some(sta(1)), "WDS SA comes from addr4");
        assert_eq!(back.body, b"bridged");
    }

    #[test]
    fn management_frame_roundtrip() {
        let ap = MacAddr::access_point(3);
        let f = Frame::management(
            Subtype::Beacon,
            MacAddr::BROADCAST,
            ap,
            ap,
            SequenceControl {
                fragment: 0,
                sequence: 1234,
            },
            b"ssid=HomeNet".to_vec(),
        );
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.fc.subtype, Subtype::Beacon);
        assert!(back.receiver().is_broadcast());
    }

    #[test]
    fn needs_ack_classification() {
        assert!(Subtype::Data.needs_ack());
        assert!(Subtype::Beacon.needs_ack()); // When unicast (probe resp etc.).
        assert!(!Subtype::Ack.needs_ack());
        assert!(!Subtype::Rts.needs_ack());
        assert!(!Subtype::Cts.needs_ack());
    }

    #[test]
    fn every_management_subtype_roundtrips() {
        use Subtype::*;
        for sub in [
            AssocReq,
            AssocResp,
            ReassocReq,
            ReassocResp,
            ProbeReq,
            ProbeResp,
            Beacon,
            Atim,
            Disassoc,
            Auth,
            Deauth,
        ] {
            let f = Frame::management(
                sub,
                sta(2),
                sta(1),
                MacAddr::access_point(0),
                SequenceControl {
                    fragment: 0,
                    sequence: 42,
                },
                vec![1, 2, 3],
            );
            let back = Frame::from_bytes(&f.to_bytes()).unwrap_or_else(|e| panic!("{sub:?}: {e}"));
            assert_eq!(back, f, "{sub:?}");
            assert_eq!(back.fc.subtype, sub);
        }
    }

    #[test]
    fn subtype_codes_are_invertible() {
        use Subtype::*;
        for sub in [
            AssocReq,
            AssocResp,
            ReassocReq,
            ReassocResp,
            ProbeReq,
            ProbeResp,
            Beacon,
            Atim,
            Disassoc,
            Auth,
            Deauth,
            PsPoll,
            Rts,
            Cts,
            Ack,
            BlockAckReq,
            BlockAck,
            Data,
            NullData,
            QosData,
        ] {
            let (ty, code) = sub.codes();
            assert_eq!(Subtype::from_codes(ty.code(), code), Some(sub));
        }
    }

    #[test]
    fn block_ack_bitmap_roundtrip() {
        let ba = Frame::block_ack(sta(1), sta(2), 0x0ABC, 0xDEAD_BEEF_0BAD_F00D);
        // 16-byte control header + 2-byte SSN + 8-byte bitmap + FCS.
        assert_eq!(ba.to_bytes().len(), 30);
        let back = Frame::from_bytes(&ba.to_bytes()).unwrap();
        assert_eq!(back, ba);
        assert_eq!(back.ba_ssn(), Some(0x0ABC));
        assert_eq!(back.ba_bitmap(), Some(0xDEAD_BEEF_0BAD_F00D));
        assert!(!back.fc.subtype.needs_ack(), "a BA is never acked");

        let bar = Frame::block_ack_req(sta(2), sta(1), 120, 77);
        assert_eq!(bar.to_bytes().len(), 22);
        let back = Frame::from_bytes(&bar.to_bytes()).unwrap();
        assert_eq!(back, bar);
        assert_eq!(back.ba_ssn(), Some(77));
        assert_eq!(back.ba_bitmap(), None, "a BAR carries no bitmap");
        assert!(!back.fc.subtype.needs_ack());
    }

    #[test]
    fn block_ack_ssn_is_twelve_bits() {
        let ba = Frame::block_ack(sta(1), sta(2), 0xFFFF, 1);
        assert_eq!(ba.ba_ssn(), Some(0x0FFF), "SSN wraps into 12 bits");
        assert_eq!(Frame::ack(sta(1)).ba_ssn(), None);
        assert_eq!(Frame::ack(sta(1)).ba_bitmap(), None);
    }

    #[test]
    fn corrupted_block_ack_fails_fcs() {
        let ba = Frame::block_ack(sta(1), sta(2), 42, u64::MAX);
        let bytes = ba.to_bytes();
        // Flip one bit at every byte position, including inside the
        // bitmap and the FCS itself: every corruption must be caught.
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x04;
            assert!(
                matches!(
                    Frame::from_bytes(&corrupted),
                    Err(FrameError::BadFcs { .. })
                ),
                "corruption at {pos} not caught"
            );
        }
    }

    #[test]
    fn qos_data_roundtrips_like_data() {
        let mut f = Frame::data(
            DsBits::Ibss,
            sta(2),
            sta(1),
            MacAddr::random_ibss_bssid(1),
            SequenceControl {
                fragment: 0,
                sequence: 99,
            },
            vec![0xAA; 48],
        );
        f.fc.subtype = Subtype::QosData;
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.fc.subtype, Subtype::QosData);
        assert!(Subtype::QosData.needs_ack());
    }

    #[test]
    fn null_data_roundtrips_with_empty_body() {
        let mut f = Frame::data(
            DsBits::ToAp,
            MacAddr::access_point(0),
            sta(1),
            MacAddr::access_point(0),
            SequenceControl::default(),
            Vec::new(),
        );
        f.fc.subtype = Subtype::NullData;
        f.fc.power_management = true;
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.fc.subtype, Subtype::NullData);
        assert!(back.fc.power_management, "the PS announcement bit");
        assert!(back.body.is_empty());
    }

    #[test]
    fn protected_bit_survives_roundtrip() {
        let mut f = Frame::data(
            DsBits::ToAp,
            sta(2),
            sta(1),
            MacAddr::access_point(0),
            SequenceControl::default(),
            vec![1, 2, 3],
        );
        f.fc.protected = true;
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert!(back.fc.protected, "WEP bit must survive");
    }
}
