//! FIG-1.7 — regenerates WiMAX rate-vs-distance for both bands and
//! times the point-to-multipoint frame scheduler.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_7_wimax;
use wn_sim::{SimTime, Simulation};
use wn_wman::link::WimaxLink;
use wn_wman::scheduler::{boot, BaseStation, ServiceClass, WimaxEvent};

fn main() {
    let (fig, report) = fig_1_7_wimax();
    print_figure(&fig);
    print_report(&report);

    bench("fig07/pmp_10ss_1s", || {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.queue_limit_bytes = 64 << 20;
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(
                bs.add_subscriber(
                    1000.0 + i as f64 * 3000.0,
                    false,
                    ServiceClass::BestEffort,
                    0.0,
                )
                .expect("in range"),
            );
        }
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        for &ss in &ids {
            sim.scheduler_mut().schedule_at(
                SimTime::ZERO,
                WimaxEvent::Offer {
                    ss,
                    bytes: 10_000_000,
                },
            );
        }
        sim.run_until(SimTime::from_secs(1));
        black_box(sim.world().total_delivered())
    });
}
