//! HMAC-SHA1 (RFC 2104), validated against the RFC 2202 vectors.

use crate::sha1::Sha1;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA1(key, message)`.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; 20] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha1::digest(key);
        k[..20].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5Cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha1::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Streaming HMAC-SHA1 for multi-part messages.
#[derive(Clone, Debug)]
pub struct HmacSha1 {
    inner: Sha1,
    opad: [u8; BLOCK],
}

impl HmacSha1 {
    /// Creates a keyed MAC instance.
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = Sha1::digest(key);
            k[..20].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5Cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha1::new();
        inner.update(&ipad);
        HmacSha1 { inner, opad }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 20-byte tag.
    pub fn finalize(self) -> [u8; 20] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-shape tag comparison (length then bytes, no early exit).
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc2202_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha1(&key, b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_case2() {
        let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha1(&key, &data);
        assert_eq!(hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_case4() {
        let key: Vec<u8> = (0x01..=0x19).collect();
        let data = [0xcd; 50];
        let tag = hmac_sha1(&key, &data);
        assert_eq!(hex(&tag), "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
    }

    #[test]
    fn rfc2202_case5() {
        let key = [0x0c; 20];
        let tag = hmac_sha1(&key, b"Test With Truncation");
        assert_eq!(hex(&tag), "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04");
    }

    #[test]
    fn rfc2202_case7_long_key_long_data() {
        let key = [0xaa; 80];
        let tag = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data",
        );
        assert_eq!(hex(&tag), "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
    }

    #[test]
    fn rfc2202_case6_long_key() {
        let key = [0xaa; 80];
        let tag = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn streaming_equals_oneshot() {
        let key = b"pairwise master key";
        let msg = b"PTK expansion || AA || SPA || ANonce || SNonce";
        let mut h = HmacSha1::new(key);
        h.update(&msg[..10]);
        h.update(&msg[10..]);
        assert_eq!(h.finalize(), hmac_sha1(key, msg));
    }

    #[test]
    fn verify_tag_behaviour() {
        let t1 = hmac_sha1(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[19] ^= 1;
        assert!(!verify_tag(&t1, &t2));
        assert!(!verify_tag(&t1, &t1[..19]));
    }

    #[test]
    fn key_sensitivity() {
        let a = hmac_sha1(b"key-a", b"msg");
        let b = hmac_sha1(b"key-b", b"msg");
        assert_ne!(a, b);
    }
}
