//! Golden-file regression: re-run the campaign and assert every
//! figure recorded in the committed EXPERIMENTS.md still reports
//! `[PASS]` — no experiment silently regresses between report
//! regenerations.

use std::collections::BTreeSet;

use wireless_networks::core::runner;

/// Figure ids in the committed golden file, in section order, each with
/// its recorded verdict.
fn golden_sections() -> Vec<(String, bool)> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md present at the repo root");
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("### ")?;
            let id = rest.split_whitespace().next()?.to_string();
            Some((id, rest.contains("[PASS]")))
        })
        .collect()
}

#[test]
fn every_golden_figure_still_passes() {
    let golden = golden_sections();
    assert!(!golden.is_empty(), "EXPERIMENTS.md has no figure sections");
    for (id, passed) in &golden {
        assert!(passed, "golden file already records {id} as failing");
    }

    let fresh = runner::run_campaign(0);
    let fresh_ids: BTreeSet<&str> = fresh.iter().map(|o| o.id).collect();
    let golden_ids: BTreeSet<&str> = golden.iter().map(|(id, _)| id.as_str()).collect();
    assert_eq!(
        golden_ids, fresh_ids,
        "EXPERIMENTS.md sections and the experiment registry diverged — regenerate the report"
    );

    let failing: Vec<&str> = fresh.iter().filter(|o| !o.passed).map(|o| o.id).collect();
    assert!(
        failing.is_empty(),
        "experiments regressed from the golden file: {failing:?}"
    );
}

#[test]
fn golden_markdown_matches_regenerated_sections() {
    // The committed file's section headers must appear verbatim in a
    // fresh render (the full file may differ only in the preamble).
    let rendered = runner::campaign_markdown(0);
    for (id, _) in golden_sections() {
        let header = format!("### {id} ");
        assert!(
            rendered.contains(&header),
            "regenerated report lost section {id}"
        );
    }
}
