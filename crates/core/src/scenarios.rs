//! One scenario function per figure of the text.
//!
//! Every function is deterministic given its seed, returns
//! [`Figure`]/report data, and is shared verbatim by the benches (which
//! print the series) and the examples (which narrate them).

use crate::experiment::ExperimentReport;
use crate::registry::Technology;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl};
use wn_mac80211::shard::{
    component_seed, digest_components, executor_window, propagation_delay, run_components_serial,
    run_components_windowed, ShardRunReport,
};
use wn_mac80211::sim::{
    boot, inject_at, qos_inject_at, AccessCategory, MacConfig, NullUpper, WlanWorld,
};
use wn_net80211::builder::{ibss_send, schedule_walk, send_app_data, EssBuilder, IbssBuilder};
use wn_net80211::ssid::Ssid;
use wn_phy::geom::Point;
use wn_phy::medium::{LinkBudget, Radio};
use wn_phy::modulation::PhyStandard;
use wn_phy::propagation::{LogDistance, Shadowing};
use wn_sim::stats::Figure;
use wn_sim::{par_map, SchedulerKind, SimDuration, SimTime, Simulation};

/// FIG-1.1 — the classification scatter: nominal range vs peak rate
/// per technology, measured.
pub fn fig_1_1_classification() -> Figure {
    let mut fig = Figure::new(
        "Fig 1.1 — wireless network classification",
        "range [m]",
        "peak rate [Mbps]",
    );
    for t in Technology::all() {
        let row = t.row();
        fig.add_series(row.name.clone())
            .push(row.measured_range_m, row.measured_max_rate.mbps());
    }
    fig
}

/// FIG-1.2 — Bluetooth piconet sharing and scatternet forwarding.
///
/// Returns (figure, report): per-slave throughput vs slave count, plus
/// the intra- vs cross-piconet comparison.
pub fn fig_1_2_bluetooth() -> (Figure, ExperimentReport) {
    use wn_wpan::bluetooth::{boot as bt_boot, fig_1_2_scatternet, BtNetwork, DeviceClass};
    let mut fig = Figure::new(
        "Fig 1.2 — Bluetooth piconet sharing",
        "active slaves",
        "kbps",
    );
    let secs = 5u64;
    // Each slave count is an independent piconet simulation — fan the
    // sweep across the pool.
    let totals: Vec<f64> = par_map((1..=7usize).collect(), |n| {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).expect("fresh master");
        let mut slaves = Vec::new();
        for i in 0..n {
            let s = net.add_device(Point::new(1.0, i as f64), DeviceClass::Class2);
            net.join(p, s).expect("in range");
            net.send(m, s, 50_000_000);
            slaves.push(s);
        }
        let mut sim = Simulation::new(net);
        bt_boot(&mut sim);
        sim.run_until(SimTime::from_secs(secs));
        slaves
            .iter()
            .map(|&s| sim.world().delivered_bytes(s) as f64 * 8.0 / secs as f64 / 1e3)
            .sum()
    });
    let per_slave = fig.add_series("per-slave");
    for (i, &total_kbps) in totals.iter().enumerate() {
        let n = i + 1;
        per_slave.push(n as f64, total_kbps / n as f64);
    }
    let agg = fig.add_series("aggregate");
    for (i, &total_kbps) in totals.iter().enumerate() {
        agg.push((i + 1) as f64, total_kbps);
    }

    // Scatternet: intra vs cross throughput.
    let run = |cross: bool| -> f64 {
        let (mut net, _pa, _pb, _bridge) = fig_1_2_scatternet(2, 2);
        if cross {
            net.send(3, 5, 4_000_000);
        } else {
            net.send(0, 3, 4_000_000);
        }
        let mut sim = Simulation::new(net);
        bt_boot(&mut sim);
        sim.run_until(SimTime::from_secs(5));
        sim.world().delivered_bytes(if cross { 5 } else { 3 }) as f64 * 8.0 / 5.0 / 1e3
    };
    let scatter = par_map(vec![false, true], run);
    let (intra, cross) = (scatter[0], scatter[1]);
    let mut report = ExperimentReport::new("FIG-1.2", "Bluetooth piconets and scatternet");
    let single = fig.series[0].points[0].1;
    report
        .compare("single-pair throughput [kbps]", 720.0, single, 0.15)
        .claim(
            "capacity is shared: 7 slaves each get < 1/5 of a single pair",
            {
                let seven = fig.series[0].points[6].1;
                seven < single / 5.0
            },
        )
        .claim("scatternet cross-piconet slower than intra", cross < intra)
        .claim("scatternet still delivers", cross > 0.0);
    (fig, report)
}

/// FIG-2 — IrDA: negotiated rate across the alignment cone and range.
pub fn fig_2_irda() -> (Figure, ExperimentReport) {
    use wn_wpan::irda::{negotiate, IrPort};
    let mut fig = Figure::new("Fig 2 — IrDA link", "distance [m]", "rate [Mbps]");
    let aligned = fig.add_series("on-axis");
    let tx = IrPort::aimed_at(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
    for d in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
        let rate = negotiate(&tx, Point::new(d, 0.0))
            .map(|r| r.mbps())
            .unwrap_or(0.0);
        aligned.push(d, rate);
    }
    let off = fig.add_series("20deg-off");
    for d in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let p = Point::new(d * 0.94, d * 0.342); // 20° off axis.
        let rate = negotiate(&tx, p).map(|r| r.mbps()).unwrap_or(0.0);
        off.push(d, rate);
    }
    let mut report = ExperimentReport::new("FIG-2", "IrDA point-to-point link");
    report
        .compare(
            "peak rate at 10 cm [Mbps]",
            16.0,
            fig.series[0].points[0].1,
            0.01,
        )
        .claim(
            "link dies beyond 1 m",
            fig.series[0].points.last().unwrap().1 == 0.0,
        )
        .claim(
            "link dies outside the 30-degree cone",
            fig.series[1].points.iter().all(|&(_, r)| r == 0.0),
        );
    (fig, report)
}

/// FIG-1.4 — ZigBee topology comparison: star vs mesh vs cluster tree.
pub fn fig_1_4_zigbee(seed: u64) -> (Figure, ExperimentReport) {
    use wn_wpan::zigbee::*;
    let mut fig = Figure::new(
        "Fig 1.4 — ZigBee topologies",
        "metric (1=delivery, 2=hops, 3=latency ms)",
        "value",
    );
    // A 16-sensor field, 30 m across — too wide for a single star hop.
    let build = |topo: Topology| -> ZigbeeNetwork {
        let mut net = ZigbeeNetwork::new(topo, seed);
        net.add_node(Point::new(0.0, 0.0), NodeRole::Ffd)
            .expect("coordinator");
        for i in 0..16 {
            let ring = 1 + i / 8;
            let a = (i % 8) as f64 / 8.0 * std::f64::consts::TAU;
            let r = 8.0 * ring as f64;
            net.add_node(Point::new(r * a.cos(), r * a.sin()), NodeRole::Ffd)
                .expect("node");
        }
        if topo == Topology::ClusterTree {
            // Inner ring parents on the coordinator, outer on inner.
            for i in 1..=8 {
                net.set_parent(i, 0).expect("FFD parent");
            }
            for i in 9..=16 {
                net.set_parent(i, i - 8).expect("FFD parent");
            }
        }
        net
    };
    // The three topologies are independent sims — sweep them in the pool.
    let topos = vec![
        ("star", Topology::Star),
        ("mesh", Topology::Mesh),
        ("cluster-tree", Topology::ClusterTree),
    ];
    let results = par_map(topos, |(name, topo)| {
        let net = build(topo);
        let mut sim = Simulation::new(net);
        // Every sensor reports to the coordinator, staggered.
        for round in 0..20u64 {
            for src in 1..=16usize {
                sim.scheduler_mut().schedule_at(
                    SimTime::from_millis(round * 250 + src as u64 * 3),
                    ZigbeeEvent::Send {
                        src,
                        dst: 0,
                        bytes: 40,
                    },
                );
            }
        }
        sim.run_until(SimTime::from_secs(10));
        let w = sim.into_world();
        let delivery = w.stats.delivery_ratio(w.offered());
        let hops = w.stats.mean_hops();
        let latency_ms = w.stats.mean_latency_s() * 1e3;
        (name, delivery, hops, latency_ms)
    });
    for &(name, delivery, hops, latency_ms) in &results {
        let s = fig.add_series(name);
        s.push(1.0, delivery);
        s.push(2.0, hops);
        s.push(3.0, latency_ms);
    }
    let mut report = ExperimentReport::new("FIG-1.4", "ZigBee star/mesh/cluster-tree");
    let star = results[0];
    let mesh = results[1];
    let tree = results[2];
    report
        .claim(
            "star loses outer-ring traffic (out of single-hop range)",
            star.1 < 0.6,
        )
        .claim("mesh delivers everything multi-hop", mesh.1 > 0.95)
        .claim(
            "cluster-tree delivers everything via parents",
            tree.1 > 0.95,
        )
        .claim(
            "tree routes are no shorter than mesh routes",
            tree.2 >= mesh.2,
        );
    (fig, report)
}

/// FIG-1.5 — UWB spectral occupancy vs narrowband, and rate/distance.
pub fn fig_1_5_uwb() -> (Figure, ExperimentReport) {
    use wn_phy::units::{Dbm, Hertz};
    use wn_wpan::uwb::*;
    let mut fig = Figure::new("Fig 1.5 — UWB PSD and rate", "x", "value");
    let psd = fig.add_series("psd [dBm/MHz]");
    let uwb = Emission::uwb(US_BAND);
    let wifi = Emission::narrowband(Dbm(20.0), Hertz::from_mhz(20.0));
    psd.push(1.0, uwb.psd_dbm_per_mhz);
    psd.push(2.0, wifi.psd_dbm_per_mhz);
    let rate = fig.add_series("rate [Mbps]");
    for d in [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
        rate.push(d, rate_at_distance(d).map(|r| r.mbps()).unwrap_or(0.0));
    }
    let mut report = ExperimentReport::new("FIG-1.5", "UWB power/bandwidth usage");
    report
        .compare("UWB PSD [dBm/MHz]", -41.3, uwb.psd_dbm_per_mhz, 0.01)
        .compare(
            "rate at 1 m [Mbps]",
            480.0,
            rate_at_distance(1.0).unwrap().mbps(),
            0.01,
        )
        .compare(
            "rate at 8 m [Mbps]",
            110.0,
            rate_at_distance(8.0).unwrap().mbps(),
            0.01,
        )
        .claim(
            "UWB PSD sits ~48 dB under a Wi-Fi carrier",
            wifi.psd_dbm_per_mhz - uwb.psd_dbm_per_mhz > 45.0,
        )
        .claim(
            "UWB occupies >1 GHz (is ultra-wideband)",
            uwb.is_uwb(Hertz::from_ghz(6.85)),
        );
    (fig, report)
}

fn data_frame(from: u32, to: u32, len: usize) -> Frame {
    Frame::data(
        DsBits::Ibss,
        MacAddr::station(to),
        MacAddr::station(from),
        MacAddr::random_ibss_bssid(1),
        SequenceControl::default(),
        vec![0xDA; len],
    )
}

/// Saturation throughput of `n` senders flooding one sink over DCF.
///
/// ARF is disabled: at close range every rate succeeds, and leaving
/// rate adaptation on would measure ARF's collision pathology (see
/// [`ablation_arf`]) rather than DCF contention itself.
pub fn wlan_saturation_mbps(std: PhyStandard, n: usize, rts: bool, seed: u64) -> f64 {
    wlan_saturation_mbps_cfg(std, n, rts, seed, false)
}

/// [`wlan_saturation_mbps`] with rate adaptation switchable.
pub fn wlan_saturation_mbps_cfg(
    std: PhyStandard,
    n: usize,
    rts: bool,
    seed: u64,
    arf: bool,
) -> f64 {
    wlan_saturation_full(std, n, rts, seed, arf, false)
}

/// Saturation throughput with every rate-adaptation mode switchable.
pub fn wlan_saturation_full(
    std: PhyStandard,
    n: usize,
    rts: bool,
    seed: u64,
    arf: bool,
    aarf: bool,
) -> f64 {
    let mut cfg = MacConfig::new(std);
    cfg.seed = seed;
    cfg.arf = arf;
    cfg.arf_adaptive = aarf;
    if rts {
        cfg.rts_threshold = 0;
    }
    let mut w = WlanWorld::new(cfg);
    // Sink at the centre, senders in a ring.
    let _sink = w.add_station(
        MacAddr::station(0),
        Point::new(0.0, 0.0),
        Box::new(NullUpper),
    );
    for i in 1..=n {
        let a = i as f64 / n as f64 * std::f64::consts::TAU;
        w.add_station(
            MacAddr::station(i as u32),
            Point::new(8.0 * a.cos(), 8.0 * a.sin()),
            Box::new(NullUpper),
        );
    }
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    let sim_secs = 1.0;
    // Enough offered load to keep every queue non-empty.
    let per_sender = (3000.0 / n as f64).ceil() as u64 + 50;
    for i in 1..=n {
        for k in 0..per_sender {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * (1_000_000 / per_sender)),
                i,
                data_frame(i as u32, 0, 1500),
            );
        }
    }
    sim.run_until(SimTime::from_secs_f64(sim_secs));
    sim.world().stats(0).rx_payload_bytes as f64 * 8.0 / sim_secs / 1e6
}

/// FIG-1.6 — home WLAN: saturation throughput vs station count, with
/// the RTS/CTS ablation.
pub fn fig_1_6_wlan_home(seed: u64) -> (Figure, ExperimentReport) {
    let mut fig = Figure::new(
        "Fig 1.6 — home WLAN saturation (802.11g)",
        "stations",
        "aggregate Mbps",
    );
    let counts = [1usize, 2, 4, 8];
    // All eight saturation points (4 station counts × basic/RTS) are
    // independent sims; sweep them through the pool in one batch.
    let jobs: Vec<(usize, bool)> = [false, true]
        .iter()
        .flat_map(|&rts| counts.iter().map(move |&n| (n, rts)))
        .collect();
    let mbps = par_map(jobs, |(n, rts)| {
        (n, wlan_saturation_mbps(PhyStandard::Dot11g, n, rts, seed))
    });
    let (basic, with_rts) = mbps.split_at(counts.len());
    let s = fig.add_series("basic DCF");
    for &(n, m) in basic {
        s.push(n as f64, m);
    }
    let s = fig.add_series("RTS/CTS");
    for &(n, m) in with_rts {
        s.push(n as f64, m);
    }
    let mut report = ExperimentReport::new("FIG-1.6", "Home WLAN throughput");
    report
        .claim(
            "MAC efficiency: single sender lands at 40-70% of the 54 Mbps PHY rate",
            (21.0..38.0).contains(&basic[0].1),
        )
        .claim(
            "throughput does not collapse with contention (within 40% of single)",
            basic[3].1 > basic[0].1 * 0.6,
        )
        .claim(
            "RTS/CTS costs throughput when there are no hidden nodes",
            with_rts[0].1 < basic[0].1,
        );
    (fig, report)
}

/// FIG-1.7 — WiMAX: rate vs distance for both bands, plus PMP sharing.
pub fn fig_1_7_wimax() -> (Figure, ExperimentReport) {
    use wn_wman::link::{WimaxBand, WimaxLink};
    let mut fig = Figure::new("Fig 1.7 — WiMAX coverage", "distance [km]", "rate [Mbps]");
    let nlos = fig.add_series("2-11 GHz NLOS");
    let l = WimaxLink::default();
    for km in [1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        nlos.push(
            km,
            l.rate_at(km * 1000.0, false)
                .map(|r| r.mbps())
                .unwrap_or(0.0),
        );
    }
    let hi = WimaxLink {
        band: WimaxBand::LineOfSight,
        ..WimaxLink::default()
    };
    let los = fig.add_series("10-66 GHz LOS");
    for km in [1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        los.push(
            km,
            hi.rate_at(km * 1000.0, false)
                .map(|r| r.mbps())
                .unwrap_or(0.0),
        );
    }
    let obstructed = fig.add_series("LOS obstructed");
    for km in [1.0, 5.0, 10.0] {
        obstructed.push(
            km,
            hi.rate_at(km * 1000.0, true)
                .map(|r| r.mbps())
                .unwrap_or(0.0),
        );
    }
    let mut report = ExperimentReport::new("FIG-1.7", "WiMAX point-to-multipoint");
    report
        .compare("peak rate [Mbps]", 70.0, l.peak_rate().mbps(), 0.01)
        .claim(
            "NLOS band still serves at 50 km",
            l.rate_at(50_000.0, false).is_some(),
        )
        .claim(
            "high band needs line of sight",
            hi.rate_at(5_000.0, true).is_none() && hi.rate_at(5_000.0, false).is_some(),
        );
    (fig, report)
}

/// FIG-1.8 — satellite vs cellular: delay and rate.
pub fn fig_1_8_wwan() -> (Figure, ExperimentReport) {
    use wn_wwan::cellular::{CellGrid, Generation};
    use wn_wwan::satellite::{GeoSatellite, SatLink};
    let mut fig = Figure::new("Fig 1.8 — WWAN technologies", "x", "value");
    let rates = fig.add_series("peak rate [Mbps]");
    for (i, g) in Generation::ALL.iter().enumerate() {
        rates.push(i as f64, g.peak_rate().mbps());
    }
    let sat = SatLink::typical();
    rates.push(Generation::ALL.len() as f64, sat.achievable_rate().mbps());

    let delay = fig.add_series("one-way delay [ms]");
    let geo = GeoSatellite {
        elevation_deg: 35.0,
    };
    delay.push(0.0, 3_000.0 / 299_792_458.0 * 1e3); // 4G cell edge.
    delay.push(1.0, geo.bent_pipe_delay_s(&geo) * 1e3);

    // Handoff drive test across a hex grid.
    let grid = CellGrid::hex(3, 1500.0);
    let seq = grid.drive_test(Point::new(-8000.0, 100.0), Point::new(8000.0, 100.0), 2000);

    let mut report = ExperimentReport::new("FIG-1.8", "Satellite and cellular networks");
    report
        .compare(
            "4G peak [Mbps]",
            1000.0,
            Generation::G4.peak_rate().mbps(),
            0.01,
        )
        .compare(
            "satellite rate [Mbps]",
            60.0,
            sat.achievable_rate().mbps(),
            0.2,
        )
        .claim(
            "GEO bent-pipe one-way delay in the 230-280 ms band",
            (0.23..0.28).contains(&geo.bent_pipe_delay_s(&geo)),
        )
        .claim("drive test hands off across multiple cells", seq.len() >= 3);
    (fig, report)
}

/// FIG-1.9 — ad hoc (IBSS) vs infrastructure (BSS) for the same
/// station set: throughput and delivery latency.
pub fn fig_1_9_ibss_vs_bss(seed: u64) -> (Figure, ExperimentReport) {
    let ssid = Ssid::new("Fig19").expect("valid ssid");
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = seed;
    let n_msgs = 40u64;

    // Ad hoc: node 0 → node 1 directly.
    let mut ibss = IbssBuilder::new(mac.clone())
        .node(Point::new(0.0, 0.0))
        .node(Point::new(20.0, 0.0))
        .build();
    let a = ibss.ids[0];
    let sh = ibss.shared[0].clone();
    for k in 0..n_msgs {
        ibss_send(
            &mut ibss.sim,
            a,
            &sh,
            MacAddr::station(1),
            vec![7; 1000],
            SimTime::from_millis(100 + k * 5),
        );
    }
    ibss.sim.run_until(SimTime::from_secs(3));
    let ibss_delivered = ibss.shared[1]
        .lock()
        .expect("shared state lock")
        .delivered
        .len() as u64;
    let ibss_last = ibss.shared[1]
        .lock()
        .expect("shared state lock")
        .delivered
        .last()
        .map(|d| d.0);

    // Infrastructure: same endpoints, AP in the middle relays.
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(10.0, 5.0), 1)
        .sta(Point::new(0.0, 0.0))
        .sta(Point::new(20.0, 0.0))
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    let sta0 = ess.sta_ids[0];
    let sh0 = ess.sta_shared[0].clone();
    for k in 0..n_msgs {
        send_app_data(
            &mut ess.sim,
            sta0,
            &sh0,
            MacAddr::station(1),
            vec![7; 1000],
            SimTime::from_millis(2100 + k * 5),
        );
    }
    ess.sim.run_until(SimTime::from_secs(6));
    let bss_delivered = ess.sta_shared[1]
        .lock()
        .expect("shared state lock")
        .delivered
        .len() as u64;
    let airtime_ibss = ibss.sim.world().stats(0).tx_frames;
    let ap_frames = ess.sim.world().stats(ess.ap_ids[0]).tx_frames;

    let mut fig = Figure::new("Fig 1.9 — IBSS vs BSS", "mode (0=IBSS,1=BSS)", "delivered");
    fig.add_series("delivered").push(0.0, ibss_delivered as f64);
    fig.series[0].push(1.0, bss_delivered as f64);

    let mut report = ExperimentReport::new("FIG-1.9", "Independent vs infrastructure BSS");
    report
        .claim("ad hoc delivers everything", ibss_delivered == n_msgs)
        .claim(
            "infrastructure delivers everything",
            bss_delivered == n_msgs,
        )
        .claim(
            "infrastructure relays: the AP transmits roughly one frame per message",
            ap_frames as f64 >= n_msgs as f64,
        )
        .claim("ad hoc completed (latency sanity)", ibss_last.is_some());
    let _ = airtime_ibss;
    (fig, report)
}

/// Outcome of the FIG-1.10 roaming walk.
#[derive(Clone, Debug)]
pub struct RoamingOutcome {
    /// Number of (re)associations observed.
    pub associations: usize,
    /// The serving BSSIDs in order.
    pub serving_order: Vec<MacAddr>,
    /// The handoff gap: time between losing AP0 contact and completing
    /// association to AP1 (seconds), when a roam happened.
    pub handoff_gap_s: Option<f64>,
    /// Messages delivered end-to-end despite the walk.
    pub delivered: usize,
    /// Messages offered.
    pub offered: usize,
}

/// FIG-1.10 — ESS roaming: a STA walks between two APs on a DS while a
/// peer keeps sending to it through the wired backbone.
pub fn fig_1_10_ess_roaming(seed: u64) -> (RoamingOutcome, ExperimentReport) {
    let ssid = Ssid::new("Fig110").expect("valid ssid");
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = seed;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .ap(Point::new(260.0, 0.0), 6)
        .sta(Point::new(10.0, 0.0)) // The walker.
        .sta(Point::new(250.0, 5.0)) // The fixed peer near AP1.
        .build();
    ess.sim.run_until(SimTime::from_secs(2));
    let walker = ess.sta_ids[0];
    schedule_walk(
        &mut ess.sim,
        walker,
        Point::new(10.0, 0.0),
        Point::new(250.0, 0.0),
        5.0,
        SimDuration::from_millis(200),
        SimTime::from_secs(2),
    );
    // The peer sends one message per second to the walker throughout.
    let peer = ess.sta_ids[1];
    let peer_sh = ess.sta_shared[1].clone();
    let offered = 60usize;
    for k in 0..offered as u64 {
        send_app_data(
            &mut ess.sim,
            peer,
            &peer_sh,
            MacAddr::station(0),
            format!("tick-{k}").into_bytes(),
            SimTime::from_millis(2500 + k * 1000),
        );
    }
    ess.sim.run_until(SimTime::from_secs(80));
    let sh = ess.sta_shared[0].lock().expect("shared state lock");
    let serving_order: Vec<MacAddr> = sh.assoc_events.iter().map(|&(_, b)| b).collect();
    let handoff_gap_s = sh
        .assoc_events
        .windows(2)
        .find_map(|w| (w[0].1 != w[1].1).then(|| (w[1].0 - w[0].0).as_secs_f64()));
    let outcome = RoamingOutcome {
        associations: sh.assoc_events.len(),
        serving_order: serving_order.clone(),
        handoff_gap_s,
        delivered: sh.delivered.len(),
        offered,
    };
    let mut report = ExperimentReport::new("FIG-1.10", "ESS roaming (seamless handoff)");
    report
        .claim(
            "the walk triggers a reassociation",
            outcome.associations >= 2,
        )
        .claim(
            "serving AP order is AP0 then AP1",
            serving_order.first() == Some(&MacAddr::access_point(0))
                && serving_order.last() == Some(&MacAddr::access_point(1)),
        )
        .claim(
            "session survives the roam: >70% of messages delivered",
            outcome.delivered * 10 >= outcome.offered * 7,
        );
    (outcome, report)
}

/// FIG-1.11/1.12 — MAC frame anatomy: per-field overhead and MAC
/// efficiency vs payload size.
pub fn fig_1_12_frame_overhead() -> (Figure, ExperimentReport) {
    let mut fig = Figure::new(
        "Fig 1.12 — MAC frame overhead",
        "payload [B]",
        "efficiency [%]",
    );
    let s = fig.add_series("data frame");
    for &len in &[0usize, 64, 256, 512, 1024, 1500, 2312] {
        let f = data_frame(1, 2, len);
        let eff = len as f64 / f.wire_len() as f64 * 100.0;
        s.push(len as f64, eff);
    }
    let data = data_frame(1, 2, 1500);
    let ack = Frame::ack(MacAddr::station(1));
    let rts = Frame::rts(MacAddr::station(1), MacAddr::station(2), 100);
    let mut report = ExperimentReport::new("FIG-1.12", "802.11 MAC frame format");
    report
        .compare(
            "data header+FCS [B]",
            28.0,
            (data.wire_len() - 1500) as f64,
            0.01,
        )
        .compare("ACK size [B]", 14.0, ack.to_bytes().len() as f64, 0.01)
        .compare("RTS size [B]", 20.0, rts.to_bytes().len() as f64, 0.01)
        .claim("efficiency exceeds 95% at 1500-B payloads", {
            let eff = 1500.0 / data.wire_len() as f64;
            eff > 0.95
        })
        .claim("codec round-trips bit-exactly", {
            Frame::from_bytes(&data.to_bytes()).as_ref() == Ok(&data)
        });
    (fig, report)
}

/// FIG-1.13 — the PHY rate ladders: achieved rate vs distance for all
/// six generations (the "automatically back down" behaviour).
pub fn fig_1_13_phy_ladder() -> (Figure, ExperimentReport) {
    let mut fig = Figure::new(
        "Fig 1.13 — PHY generations, rate vs distance (indoor)",
        "distance [m]",
        "rate [Mbps]",
    );
    let model = LogDistance::indoor();
    // One ladder per PHY generation; each is independent, so compute the
    // six ladders as parallel sweep points and assemble in ALL order.
    let ladders = par_map(PhyStandard::ALL.to_vec(), |std| {
        let lb = LinkBudget::for_standard(std, Radio::consumer_wifi());
        [
            1.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 250.0, 400.0,
        ]
        .iter()
        .map(|&d| {
            let rate = lb
                .best_rate_at(std, &model, d)
                .map(|r| r.rate.mbps())
                .unwrap_or(0.0);
            (d, rate)
        })
        .collect::<Vec<_>>()
    });
    for (std, points) in PhyStandard::ALL.iter().zip(ladders) {
        let s = fig.add_series(std.name());
        for (d, rate) in points {
            s.push(d, rate);
        }
    }
    let mut report = ExperimentReport::new("FIG-1.13", "802.11 PHY standards ladder");
    let near = |idx: usize| fig.series[idx].points[0].1;
    report
        .compare("802.11 peak [Mbps]", 2.0, near(0), 0.01)
        .compare("802.11b peak [Mbps]", 11.0, near(1), 0.01)
        .compare("802.11a peak [Mbps]", 54.0, near(2), 0.01)
        .compare("802.11g peak [Mbps]", 54.0, near(3), 0.01)
        .compare("802.11n peak [Mbps]", 600.0, near(4), 0.01)
        .compare("802.11ac peak [Gbps]", 1.3, near(5) / 1000.0, 0.01)
        .claim("every ladder is non-increasing with distance", {
            fig.series
                .iter()
                .all(|s| s.points.windows(2).all(|w| w[1].1 <= w[0].1))
        })
        .claim(
            "802.11a (5 GHz) falls off its top rate before 802.11g (2.4 GHz)",
            {
                let a_cut = fig.series[2].first_x_below(50.0).unwrap_or(f64::INFINITY);
                let g_cut = fig.series[3].first_x_below(50.0).unwrap_or(f64::INFINITY);
                a_cut <= g_cut
            },
        )
        .claim("802.11a (5 GHz) link dies before 802.11g (2.4 GHz)", {
            let a_dead = fig.series[2].first_x_below(1.0).unwrap_or(f64::INFINITY);
            let g_dead = fig.series[3].first_x_below(1.0).unwrap_or(f64::INFINITY);
            a_dead <= g_dead
        });
    (fig, report)
}

/// SEC-RANK — the §5.2 ranking with measured WEP-crack effort.
pub fn sec_ranking() -> (Figure, ExperimentReport) {
    use wn_security::attacks::fms::{directed_capture, recover_key};
    use wn_security::ranking::{breach_ranking, SecurityMethod};
    use wn_security::wep::WepKey;

    let mut fig = Figure::new(
        "§5.2 — security ranking",
        "rank",
        "time-to-breach [log10 s]",
    );
    // Each ranked method is an independent sweep point.
    let points = par_map(breach_ranking(), |(rank, _m, t)| {
        (rank as f64, (t.max(1.0)).log10())
    });
    let s = fig.add_series("time-to-breach");
    for (x, y) in points {
        s.push(x, y);
    }

    // Live demonstration: actually crack a 64-bit WEP key.
    let key = WepKey::new(b"\x42\x13\x37\xC0\xDE").expect("5 bytes");
    let (samples, reference) = directed_capture(&key);
    let started = std::time::Instant::now();
    let rec = recover_key(&samples, 5, &reference, 3, 10_000);
    let crack_wall_s = started.elapsed().as_secs_f64();

    let mut report = ExperimentReport::new("SEC-RANK", "Wi-Fi security methods, best to worst");
    report
        .claim(
            "WEP key actually recovered by FMS",
            rec.key.as_deref() == Some(key.secret()),
        )
        .claim(
            "the live crack is 'minutes' class (< 5 min wall clock here)",
            crack_wall_s < 300.0,
        )
        .claim("ranking times strictly ordered", {
            let times: Vec<f64> = SecurityMethod::RANKED
                .iter()
                .map(|m| m.time_to_breach_s())
                .collect();
            times.windows(2).all(|w| w[0] > w[1])
        })
        .claim("WPS caps even WPA2 at hours", {
            SecurityMethod::Wpa2Aes.time_to_breach_with_wps_s() <= 14.0 * 3600.0
        });
    (fig, report)
}

/// ADV-6 — the §6 trade-offs: co-channel interference degradation and
/// shadowing black spots.
pub fn adv_tradeoffs(seed: u64) -> (Figure, ExperimentReport) {
    // Interference: two saturated pairs, same channel vs channels 1/6.
    let run_pairs = |same_channel: bool| -> f64 {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        let mut w = WlanWorld::new(cfg);
        let a_tx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let a_rx = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let b_tx = w.add_station(
            MacAddr::station(2),
            Point::new(0.0, 12.0),
            Box::new(NullUpper),
        );
        let b_rx = w.add_station(
            MacAddr::station(3),
            Point::new(5.0, 12.0),
            Box::new(NullUpper),
        );
        if !same_channel {
            w.set_channel(b_tx, 6);
            w.set_channel(b_rx, 6);
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        // Saturating load: each pair alone could carry ~27 Mbps.
        for k in 0..3000u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 330),
                a_tx,
                data_frame(0, 1, 1400),
            );
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 330),
                b_tx,
                data_frame(2, 3, 1400),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        (w.stats(a_rx).rx_payload_bytes + w.stats(b_rx).rx_payload_bytes) as f64 * 8.0 / 1e6
    };
    let pairs = par_map(vec![true, false], run_pairs);
    let (shared, separate) = (pairs[0], pairs[1]);

    // Black spots: fraction of positions in a 40×40 m floor where the
    // shadowed link to a corner AP cannot sustain even the base rate.
    let lb = LinkBudget::for_standard(PhyStandard::Dot11g, Radio::consumer_wifi());
    let model = Shadowing {
        base: LogDistance::indoor(),
        sigma_db: 9.0,
        seed,
    };
    let ap = Point::new(0.0, 0.0);
    let mut dead = 0;
    let mut total = 0;
    for gx in 1..=20 {
        for gy in 1..=20 {
            let p = Point::new(gx as f64 * 2.0, gy as f64 * 2.0);
            let loss = model.loss_between(ap, p, lb.frequency);
            let snr = lb.snr(loss);
            total += 1;
            if PhyStandard::Dot11g.best_rate_for_snr(snr).is_none() {
                dead += 1;
            }
        }
    }
    let dead_fraction = dead as f64 / total as f64;
    // Without shadowing the same floor has full coverage.
    let mut dead_flat = 0;
    for gx in 1..=20 {
        for gy in 1..=20 {
            let p = Point::new(gx as f64 * 2.0, gy as f64 * 2.0);
            let snr = lb.snr_at(&LogDistance::indoor(), ap.distance_to(p));
            if PhyStandard::Dot11g.best_rate_for_snr(snr).is_none() {
                dead_flat += 1;
            }
        }
    }

    let mut fig = Figure::new("§6 — trade-offs", "x", "value");
    let s = fig.add_series("aggregate Mbps");
    s.push(0.0, shared);
    s.push(1.0, separate);
    let d = fig.add_series("dead-spot fraction");
    d.push(0.0, dead_flat as f64 / total as f64);
    d.push(1.0, dead_fraction);

    let mut report = ExperimentReport::new("ADV-6", "Interference and coverage black spots");
    report
        .claim(
            "co-channel neighbours degrade aggregate throughput",
            shared < separate * 0.75,
        )
        .claim("orthogonal channels restore it", separate > shared)
        .claim(
            "shadowing creates black spots on a floor with flat-model full coverage",
            dead_flat == 0 && dead_fraction > 0.0,
        );
    (fig, report)
}

/// ABL-CW — binary-exponential-backoff ablation: saturation throughput
/// of eight contending stations across CWmin values (DESIGN.md §6.3).
pub fn ablation_cw_sweep(seed: u64) -> (Figure, ExperimentReport) {
    let mut fig = Figure::new(
        "ABL-CW — CWmin sweep (8 stations, 802.11g, no capture)",
        "CWmin",
        "aggregate Mbps",
    );
    let run = |cw_min: u32| -> f64 {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        cfg.capture = false;
        cfg.cw_min_override = Some(cw_min);
        let mut w = WlanWorld::new(cfg);
        let sink = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        for i in 1..=8usize {
            let a = i as f64 / 8.0 * std::f64::consts::TAU;
            w.add_station(
                MacAddr::station(i as u32),
                Point::new(6.0 * a.cos(), 6.0 * a.sin()),
                Box::new(NullUpper),
            );
        }
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for i in 1..=8usize {
            for k in 0..450u64 {
                inject_at(
                    &mut sim,
                    SimTime::from_micros(k * 2200),
                    i,
                    data_frame(i as u32, 0, 1500),
                );
            }
        }
        sim.run_until(SimTime::from_secs(1));
        sim.world().stats(sink).rx_payload_bytes as f64 * 8.0 / 1e6
    };
    let cws = [3u32, 15, 63, 255];
    // Four contended sweep points, all independent — run them in the pool.
    let swept = par_map(cws.to_vec(), |cw| (cw, run(cw)));
    let s = fig.add_series("aggregate");
    let mut results = Vec::new();
    for &(cw, m) in &swept {
        s.push(cw as f64, m);
        results.push((cw, m));
    }
    let by_cw = |cw: u32| results.iter().find(|&&(c, _)| c == cw).expect("swept").1;

    // The flip side: with a single sender there is nobody to collide
    // with, and a huge CW only wastes idle slots.
    let run_light = |cw_min: u32| -> f64 {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed ^ 0x5555;
        cfg.capture = false;
        cfg.cw_min_override = Some(cw_min);
        let mut w = WlanWorld::new(cfg);
        let sink = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let tx = w.add_station(
            MacAddr::station(1),
            Point::new(6.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for k in 0..3000u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 330),
                tx,
                data_frame(1, 0, 1500),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        sim.world().stats(sink).rx_payload_bytes as f64 * 8.0 / 1e6
    };
    let lights = par_map(vec![15u32, 1023], run_light);
    let (light_15, light_1023) = (lights[0], lights[1]);
    let light = fig.add_series("1 sender");
    light.push(15.0, light_15);
    light.push(1023.0, light_1023);

    let mut report = ExperimentReport::new("ABL-CW", "Binary exponential backoff ablation");
    report
        .claim(
            "under heavy contention, a small CWmin drowns in collisions (CW 3 < CW 63)",
            by_cw(3) < by_cw(63),
        )
        .claim(
            "under light contention, a huge CWmin wastes idle slots (CW 1023 < CW 15)",
            light_1023 < light_15 * 0.6,
        );
    (fig, report)
}

/// ABL-CAPTURE — the capture-effect ablation: a tiny contention window
/// forces frequent same-slot collisions between a near (strong) and a
/// far (weak) sender; SINR capture on vs off (DESIGN.md §6.5).
pub fn ablation_capture(seed: u64) -> (Figure, ExperimentReport) {
    let run = |capture: bool| -> (f64, f64, f64) {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        cfg.capture = capture;
        cfg.arf = false;
        // CWmin 1 ⇒ the two saturated senders draw the same slot about
        // half the time — a collision generator.
        cfg.cw_min_override = Some(1);
        cfg.cw_max_override = Some(3);
        let mut w = WlanWorld::new(cfg);
        let rx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let a = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let b = w.add_station(
            MacAddr::station(2),
            Point::new(55.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for k in 0..1500u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 660),
                a,
                data_frame(1, 0, 1200),
            );
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 660),
                b,
                data_frame(2, 0, 1200),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        let collisions = w.stats(rx).rx_errors as f64;
        (
            w.stats(a).retries as f64,
            w.stats(b).retries as f64,
            collisions,
        )
    };
    let modes = par_map(vec![true, false], run);
    let (on_near, on_far, on_coll) = modes[0];
    let (off_near, off_far, off_coll) = modes[1];
    let mut fig = Figure::new(
        "ABL-CAPTURE — capture effect",
        "capture (0=off,1=on)",
        "value",
    );
    let near = fig.add_series("near retries");
    near.push(0.0, off_near);
    near.push(1.0, on_near);
    let far = fig.add_series("far retries");
    far.push(0.0, off_far);
    far.push(1.0, on_far);
    let coll = fig.add_series("rx errors");
    coll.push(0.0, off_coll);
    coll.push(1.0, on_coll);
    let mut report = ExperimentReport::new("ABL-CAPTURE", "SINR capture effect ablation");
    report
        .claim(
            "collisions happen in both modes (the generator works)",
            on_coll > 100.0 && off_coll > 100.0,
        )
        .claim(
            "with capture, the strong sender sails through collisions",
            on_near < 50.0 && on_far > 200.0,
        )
        .claim(
            "without capture, collisions destroy both frames alike",
            off_near > 200.0 && (off_near - off_far).abs() < (off_near + off_far) * 0.4,
        );
    (fig, report)
}

/// ABL-ARF — rate-adaptation ablation on a marginal link: adaptive
/// fallback vs a rate pinned at 54 Mbps (DESIGN.md §6.2).
pub fn ablation_arf(seed: u64) -> (Figure, ExperimentReport) {
    let run = |arf: bool| -> (f64, u64) {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        cfg.arf = arf;
        let mut w = WlanWorld::new(cfg);
        let tx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let rx = w.add_station(
            MacAddr::station(1),
            Point::new(78.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for k in 0..1200u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 800),
                tx,
                data_frame(0, 1, 1200),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        (
            w.stats(rx).rx_payload_bytes as f64 * 8.0 / 1e6,
            w.stats(tx).tx_failures,
        )
    };
    let modes = par_map(vec![true, false], run);
    let (adaptive_mbps, adaptive_fail) = modes[0];
    let (pinned_mbps, pinned_fail) = modes[1];
    let mut fig = Figure::new(
        "ABL-ARF — rate adaptation at 78 m",
        "mode (0=pinned,1=ARF)",
        "Mbps",
    );
    let s = fig.add_series("goodput");
    s.push(0.0, pinned_mbps);
    s.push(1.0, adaptive_mbps);
    // The flip side — ARF's famous pathology: under *collision* losses
    // (strong signals, heavy contention) rate fallback only makes
    // frames longer and throughput worse. This is the behaviour that
    // motivated AARF and collision-aware rate adaptation.
    let contended = par_map(
        vec![(true, false), (true, true), (false, false)],
        |(a, aa)| wlan_saturation_full(PhyStandard::Dot11g, 4, false, seed, a, aa),
    );
    let (contended_arf, contended_aarf, contended_fixed) =
        (contended[0], contended[1], contended[2]);
    let p = fig.add_series("4-sta contention");
    p.push(0.0, contended_fixed);
    p.push(1.0, contended_arf);
    p.push(2.0, contended_aarf);

    let mut report = ExperimentReport::new("ABL-ARF", "ARF rate-fallback ablation");
    report
        .claim(
            "'automatically back down from 54 Mbps': ARF beats a pinned top rate on a weak link",
            adaptive_mbps > pinned_mbps * 1.5,
        )
        .claim(
            "the pinned link burns through retry limits",
            pinned_fail > adaptive_fail,
        )
        .claim(
            "ARF's collision pathology: under contention losses, rate fallback hurts",
            contended_arf < contended_fixed,
        )
        .claim(
            "AARF's probe backoff recovers part of the contention loss",
            contended_aarf > contended_arf,
        );
    (fig, report)
}

/// ABL-ADJ — the 2.4 GHz channel-plan experiment: two neighbouring
/// BSS pairs on co-channel (1/1), adjacent (1/3) and orthogonal (1/6)
/// channels — the mechanism behind the "use 1, 6, 11" rule.
pub fn adjacent_channels(seed: u64) -> (Figure, ExperimentReport) {
    let run = |other_channel: u8| -> f64 {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        cfg.arf = false;
        let mut w = WlanWorld::new(cfg);
        let a_tx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let a_rx = w.add_station(
            MacAddr::station(1),
            Point::new(5.0, 0.0),
            Box::new(NullUpper),
        );
        let b_tx = w.add_station(
            MacAddr::station(2),
            Point::new(0.0, 14.0),
            Box::new(NullUpper),
        );
        let b_rx = w.add_station(
            MacAddr::station(3),
            Point::new(5.0, 14.0),
            Box::new(NullUpper),
        );
        w.set_channel(b_tx, other_channel);
        w.set_channel(b_rx, other_channel);
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for k in 0..3000u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 330),
                a_tx,
                data_frame(0, 1, 1400),
            );
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 330),
                b_tx,
                data_frame(2, 3, 1400),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let w = sim.world();
        (w.stats(a_rx).rx_payload_bytes + w.stats(b_rx).rx_payload_bytes) as f64 * 8.0 / 1e6
    };
    let plans = par_map(vec![1u8, 3, 6], run);
    let (co, adjacent, orthogonal) = (plans[0], plans[1], plans[2]);
    let mut fig = Figure::new(
        "ABL-ADJ — 2.4 GHz channel plan (two BSS pairs)",
        "plan (1=co, 3=adjacent, 6=orthogonal)",
        "aggregate Mbps",
    );
    let s = fig.add_series("aggregate");
    s.push(1.0, co);
    s.push(3.0, adjacent);
    s.push(6.0, orthogonal);
    let mut report = ExperimentReport::new("ABL-ADJ", "Adjacent-channel interference");
    report
        .claim(
            "orthogonal channels (1/6) roughly double co-channel capacity",
            orthogonal > co * 1.5,
        )
        .claim(
            "orthogonal beats adjacent: partial overlap is not isolation",
            orthogonal >= adjacent,
        )
        .claim(
            "adjacent is no worse than full co-channel sharing",
            adjacent >= co * 0.9,
        );
    (fig, report)
}

/// ABL-FADING — rate adaptation under Rayleigh fading: a mid-range
/// link whose channel swings ±15 dB every few milliseconds. ARF tracks
/// the fades; a pinned top rate dies in every trough.
pub fn fading_link(seed: u64) -> (Figure, ExperimentReport) {
    use wn_phy::fading::Fading;
    use wn_phy::propagation::PathLoss;

    let run = |arf: bool, faded: bool| -> f64 {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        cfg.arf = arf;
        let mut w = WlanWorld::new(cfg);
        if faded {
            let base = LogDistance::indoor();
            let fade = Fading::rayleigh(0.02, seed);
            w.set_loss_model(Box::new(move |a, b, f, t| {
                base.loss(a.distance_to(b), f) - fade.fade_db(a, b, t.as_secs_f64())
            }));
        }
        let tx = w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        let rx = w.add_station(
            MacAddr::station(1),
            Point::new(55.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        for k in 0..1500u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 660),
                tx,
                data_frame(0, 1, 1200),
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let _ = tx;
        sim.world().stats(rx).rx_payload_bytes as f64 * 8.0 / 1e6
    };
    let cases = par_map(
        vec![(false, false), (false, true), (true, true)],
        |(arf, faded)| run(arf, faded),
    );
    let (flat_pinned, faded_pinned, faded_arf) = (cases[0], cases[1], cases[2]);
    let mut fig = Figure::new(
        "ABL-FADING — Rayleigh fading at 55 m",
        "case (0=flat/pinned, 1=faded/pinned, 2=faded/ARF)",
        "goodput Mbps",
    );
    let s = fig.add_series("goodput");
    s.push(0.0, flat_pinned);
    s.push(1.0, faded_pinned);
    s.push(2.0, faded_arf);
    let mut report = ExperimentReport::new("ABL-FADING", "Rate adaptation under fading");
    report
        .claim(
            "fading hurts a pinned rate",
            faded_pinned < flat_pinned * 0.8,
        )
        .claim(
            "ARF recovers throughput by riding the fades",
            faded_arf > faded_pinned * 1.1,
        );
    (fig, report)
}

/// ENERGY-2.1 — the "low power demands" positioning of §2.1: average
/// draw and battery life per technology for a duty-cycled sensor.
pub fn energy_budget() -> (Figure, ExperimentReport) {
    use crate::energy::*;
    let work = TelemetryWorkload::sensor();
    let coin = 1860.0; // CR2450 coin cell, mWh.
    let mut fig = Figure::new(
        "§2.1 — sensor energy budget (32 B / 60 s)",
        "technology (0=ZigBee,1=Bluetooth,2=Wi-Fi)",
        "value",
    );
    let mut rows = Vec::new();
    for (x, tech) in [
        (0.0, Technology::Zigbee),
        (1.0, Technology::Bluetooth),
        (2.0, Technology::WiFi(PhyStandard::Dot11b)),
    ] {
        let p = PowerProfile::for_technology(tech).expect("node technology");
        let avg = average_power_mw(&p, &work);
        let days = battery_life_days(&p, &work, coin);
        rows.push((tech, avg, days));
        let _ = x;
    }
    let avg_series = fig.add_series("avg mW");
    for (i, &(_, avg, _)) in rows.iter().enumerate() {
        avg_series.push(i as f64, avg);
    }
    let life = fig.add_series("coin-cell days");
    for (i, &(_, _, days)) in rows.iter().enumerate() {
        life.push(i as f64, days);
    }
    let mut report = ExperimentReport::new("ENERGY-2.1", "WPAN low-power positioning");
    report
        .claim(
            "ZigBee sensor lasts years on a coin cell",
            rows[0].2 > 730.0,
        )
        .claim(
            "power ordering ZigBee < Bluetooth < Wi-Fi",
            rows[0].1 < rows[1].1 && rows[1].1 < rows[2].1,
        )
        .claim(
            "Wi-Fi costs at least 10x ZigBee for the same telemetry",
            rows[2].1 > rows[0].1 * 10.0,
        );
    (fig, report)
}

/// TAB-8.1 — the full comparison table as an experiment report.
pub fn table_8_1() -> ExperimentReport {
    let mut report = ExperimentReport::new("TAB-8.1", "Comparison of wireless network types");
    for row in crate::registry::comparison_table() {
        report.compare(
            format!("{} max rate [Mbps]", row.name),
            row.paper_max_rate.mbps(),
            row.measured_max_rate.mbps(),
            1.0,
        );
    }
    report
}

// ---------------------------------------------------------------------
// SCALE-DCF — DCF saturation at scale (10 → 1000 stations)
//
// The 802.11 literature this repo tracks centres on how DCF throughput
// collapses as contention grows; no figure of the source text pushes
// past a handful of stations, so this experiment family extends the
// reproduction to a BSS of up to 1000 saturated senders. It doubles as
// the dense-timer workload the scheduler back ends are benchmarked and
// differentially tested on (`perfsuite`, DESIGN.md §12).
// ---------------------------------------------------------------------

/// Payload bytes per MSDU in the SCALE-DCF workload.
pub const SCALE_DCF_PAYLOAD: usize = 400;

/// One sweep point of the SCALE-DCF saturation workload.
#[derive(Clone, Debug)]
pub struct ScaleDcfPoint {
    /// Contending senders (the sink is an extra station).
    pub stations: usize,
    /// Virtual milliseconds simulated.
    pub duration_ms: u64,
    /// Mean per-sender delivered goodput [kbps].
    pub per_station_kbps: f64,
    /// Aggregate delivered goodput [Mbps].
    pub aggregate_mbps: f64,
    /// Jain fairness index over per-sender completion counts.
    pub jain_fairness: f64,
    /// Median access delay [µs].
    pub access_delay_p50_us: u64,
    /// 99th-percentile access delay [µs].
    pub access_delay_p99_us: u64,
    /// True when every sender still holds an unserved backlog at the
    /// horizon — the run was saturated end to end.
    pub saturated: bool,
    /// Events the engine delivered.
    pub events: u64,
    /// FNV-1a of the metrics snapshot JSONL — the fingerprint the
    /// scheduler-equivalence checks compare across back ends.
    pub metrics_fnv: u64,
}

/// Builds the saturated-BSS simulation behind every SCALE-DCF point:
/// `stations` senders on an 8 m ring around a sink, pure DCF (no RTS,
/// no ARF, fixed top rate), offered ≈ 1.25× channel capacity with the
/// whole backlog pre-scheduled as `Inject` timers spread over the first
/// 90% of the horizon — so the scheduler carries tens of thousands of
/// pending timers for the entire run, the dense-timer regime calendar
/// queues were built for.
pub fn scale_dcf_sim(
    stations: usize,
    duration_ms: u64,
    seed: u64,
    kind: SchedulerKind,
) -> Simulation<WlanWorld> {
    scale_dcf_sim_opts(stations, duration_ms, seed, kind, true)
}

/// [`scale_dcf_sim`] with the neighbor cache forced on or off — the
/// lever the perfsuite `neighbors` section and the cache-equivalence
/// checks use to time and compare the two propagation paths.
pub fn scale_dcf_sim_opts(
    stations: usize,
    duration_ms: u64,
    seed: u64,
    kind: SchedulerKind,
    neighbor_cache: bool,
) -> Simulation<WlanWorld> {
    let (mut world, frames_per_sender) = scale_dcf_world(stations, duration_ms, seed);
    world.set_neighbor_cache(neighbor_cache);
    let mut sim = Simulation::with_scheduler(world, kind);
    scale_dcf_load(&mut sim, stations, duration_ms, frames_per_sender);
    sim
}

/// Builds the SCALE-DCF world; returns it plus the per-sender backlog.
fn scale_dcf_world(stations: usize, duration_ms: u64, seed: u64) -> (WlanWorld, u64) {
    assert!(stations >= 1, "need at least one sender");
    // Offered load ≈ 1.25× the collision-free channel capacity plus a
    // fixed floor, so every queue stays backlogged to the horizon even
    // for the luckiest sender.
    let frames_per_sender = duration_ms * 1_000 / (120 * stations as u64) + 64;

    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    // Fixed top rate: the collapse measured is pure contention, not
    // rate drift.
    cfg.arf = false;
    // Saturated but lossless at enqueue: the whole backlog fits.
    cfg.queue_limit = frames_per_sender as usize;

    let mut w = WlanWorld::new(cfg);
    // Sink at the centre, senders on a ring: a single collision domain
    // where everyone hears everyone.
    w.add_stations(
        stations + 1,
        |i| {
            if i == 0 {
                Point::new(0.0, 0.0)
            } else {
                let a = i as f64 / stations as f64 * std::f64::consts::TAU;
                Point::new(8.0 * a.cos(), 8.0 * a.sin())
            }
        },
        |_| Box::new(NullUpper),
    );
    (w, frames_per_sender)
}

/// Boots the world and pre-schedules the offered backlog, interleaved
/// round-robin across senders at a fixed stride.
fn scale_dcf_load(
    sim: &mut Simulation<WlanWorld>,
    stations: usize,
    duration_ms: u64,
    frames_per_sender: u64,
) {
    boot(sim);
    let total_frames = frames_per_sender * stations as u64;
    let stride_ns = duration_ms * 900_000 / total_frames;
    for i in 1..=stations {
        for k in 0..frames_per_sender {
            let j = k * stations as u64 + (i as u64 - 1);
            inject_at(
                sim,
                SimTime::from_nanos(j * stride_ns),
                i,
                data_frame(i as u32, 0, SCALE_DCF_PAYLOAD),
            );
        }
    }
}

/// Records the exact scheduler op stream (pushed keys + pop markers) a
/// SCALE-DCF point generates, for replaying through both back ends in
/// isolation — see [`wn_sim::replay_ops`]. Recording starts before
/// boot, so every pop in the stream has a matching recorded push.
pub fn scale_dcf_op_log(stations: usize, duration_ms: u64, seed: u64) -> Vec<u128> {
    let (world, frames_per_sender) = scale_dcf_world(stations, duration_ms, seed);
    let mut sim = Simulation::with_scheduler(world, SchedulerKind::BinaryHeap);
    sim.scheduler_mut().record_ops();
    scale_dcf_load(&mut sim, stations, duration_ms, frames_per_sender);
    sim.run_until(SimTime::from_millis(duration_ms));
    sim.scheduler_mut().take_op_log()
}

/// Runs one saturated-BSS point on the chosen scheduler back end and
/// reduces it to throughput, fairness, delay and digest observables.
pub fn scale_dcf_point(
    stations: usize,
    duration_ms: u64,
    seed: u64,
    kind: SchedulerKind,
) -> ScaleDcfPoint {
    scale_dcf_point_opts(stations, duration_ms, seed, kind, true)
}

/// [`scale_dcf_point`] with the neighbor cache forced on or off.
pub fn scale_dcf_point_opts(
    stations: usize,
    duration_ms: u64,
    seed: u64,
    kind: SchedulerKind,
    neighbor_cache: bool,
) -> ScaleDcfPoint {
    let mut sim = scale_dcf_sim_opts(stations, duration_ms, seed, kind, neighbor_cache);
    let end = SimTime::from_millis(duration_ms);
    sim.run_until(end);

    let events = sim.processed();
    let world = sim.world();
    let snap = world.metrics_snapshot(end);
    let metrics_fnv = wn_sim::stats::fnv1a(snap.to_jsonl("SCALE-DCF").as_bytes());
    let sender_counter = |name: &str| -> Vec<u64> {
        snap.rows
            .iter()
            .filter(|r| {
                r.kind == "counter"
                    && r.key.layer == "mac"
                    && r.key.name == name
                    && r.key.station.is_some_and(|s| s >= 1)
            })
            .map(|r| r.fields.first().map_or(0, |&(_, v)| v as u64))
            .collect()
    };
    let completions = sender_counter("tx_completions");
    debug_assert_eq!(completions.len(), stations);
    // A sender is still saturated at the horizon when its queue holds
    // frames the MAC never got to: queued > completions + failures +
    // drops (the queue-conservation identity).
    let queued = sender_counter("queued");
    let failures = sender_counter("tx_failures");
    let drops = sender_counter("queue_drops");
    let saturated = (0..stations).all(|i| queued[i] > completions[i] + failures[i] + drops[i]);

    let total: u64 = completions.iter().sum();
    let sum_sq: f64 = completions.iter().map(|&c| (c as f64) * (c as f64)).sum();
    let jain_fairness = if total == 0 {
        // An empty run is degenerate, not fair — fail loudly.
        0.0
    } else {
        (total as f64) * (total as f64) / (stations as f64 * sum_sq)
    };
    let duration_s = duration_ms as f64 / 1_000.0;
    let goodput_bits = (total * SCALE_DCF_PAYLOAD as u64 * 8) as f64;
    ScaleDcfPoint {
        stations,
        duration_ms,
        per_station_kbps: goodput_bits / duration_s / stations as f64 / 1_000.0,
        aggregate_mbps: goodput_bits / duration_s / 1e6,
        jain_fairness,
        access_delay_p50_us: world.access_delay_quantile(0.5).unwrap_or(0),
        access_delay_p99_us: world.access_delay_quantile(0.99).unwrap_or(0),
        saturated,
        events,
        metrics_fnv,
    }
}

/// The SCALE-DCF sweep: `(stations, duration_ms)` per point.
///
/// Horizons scale with the station count (≈35 ms per station, floored
/// at 560 ms) because DCF's short-term capture unfairness needs a long
/// mixing window before the Jain index converges — the n ≤ 200 points
/// are sized for Jain ≥ 0.95, while the 500/1000-station tail uses a
/// short horizon to measure the collapse itself. Debug builds — where
/// the tier-1 suite re-runs the whole campaign — use a scaled-down
/// sweep with the same shape; release builds (the committed
/// EXPERIMENTS.md and `perfsuite`) run the full 10 → 1000 collapse.
pub fn scale_dcf_sweep() -> Vec<(usize, u64)> {
    if cfg!(debug_assertions) {
        vec![(2, 150), (5, 400), (30, 1700)]
    } else {
        vec![
            (10, 560),
            (50, 3500),
            (100, 3500),
            (200, 7000),
            (500, 700),
            (1000, 700),
        ]
    }
}

/// SCALE-DCF — saturation throughput collapse plus the differential
/// scheduler check, as an experiment report.
///
/// Returns the sweep points (for the report table and the benches) and
/// the claims: the collapse shape, monotonicity, Jain fairness under
/// symmetric load, and byte-identical metrics from both scheduler back
/// ends on a mid-size point.
pub fn scale_dcf(seed: u64) -> (Vec<ScaleDcfPoint>, ExperimentReport) {
    let points: Vec<ScaleDcfPoint> = par_map(scale_dcf_sweep(), |(n, d)| {
        scale_dcf_point(n, d, seed, SchedulerKind::BinaryHeap)
    });
    // The differential run: both back ends on one mid-size point.
    let (n_mid, d_mid) = if cfg!(debug_assertions) {
        (30, 200)
    } else {
        (100, 200)
    };
    let pair: Vec<ScaleDcfPoint> = par_map(SchedulerKind::ALL.to_vec(), |k| {
        scale_dcf_point(n_mid, d_mid, seed, k)
    });

    let first = points.first().expect("sweep non-empty");
    let last = points.last().expect("sweep non-empty");
    let mut report = ExperimentReport::new(
        "SCALE-DCF",
        "DCF saturation throughput collapse, 10 → 1000 stations",
    );
    report
        .claim(
            "per-station goodput collapses >=10x from the smallest to the largest BSS",
            last.per_station_kbps * 10.0 < first.per_station_kbps,
        )
        .claim(
            "per-station goodput is monotonically non-increasing in station count",
            points
                .windows(2)
                .all(|w| w[1].per_station_kbps <= w[0].per_station_kbps),
        )
        .claim(
            "Jain fairness >= 0.95 under symmetric saturation (n <= 200)",
            points
                .iter()
                .filter(|p| p.stations <= 200)
                .all(|p| p.jain_fairness >= 0.95),
        )
        .claim(
            "every sender stays backlogged to the horizon at every point",
            points.iter().all(|p| p.saturated),
        )
        .claim(
            "median access delay >= 1 ms everywhere (contention dominates airtime)",
            points.iter().all(|p| p.access_delay_p50_us >= 1_000),
        )
        .claim(
            "timer-wheel and binary-heap schedulers agree bit-for-bit",
            pair[0].metrics_fnv == pair[1].metrics_fnv && pair[0].events == pair[1].events,
        );
    (points, report)
}

// ---------------------------------------------------------------------
// CITY-DCF — spatially-sharded parallel worlds
//
// A city block grid of saturated BSSes: cells every 200 m on channels
// 1/6/11 (colored so no two co-channel cells are closer than 200·√2 m),
// one sink plus a sender ring per cell. The deployment partitions into
// one interference shard per cell (`WlanWorld::shard_plan` with the
// 250 m co-channel radius), and every point runs the composition twice
// — serial reference vs the windowed shard executor at 1/2/4 workers —
// and demands byte-identical digests (DESIGN.md §15).
// ---------------------------------------------------------------------

/// Street-grid spacing between neighbouring cell centres [m].
pub const CITY_DCF_SPACING_M: f64 = 200.0;

/// Radius of each cell's sender ring around its sink [m].
pub const CITY_DCF_RING_M: f64 = 8.0;

/// The classic 2.4 GHz non-overlapping channel plan; cell `(row, col)`
/// takes `CITY_DCF_CHANNELS[(2·row + col) % 3]`, which keeps every
/// co-channel pair of cells at least `√2 ×` the grid spacing apart.
pub const CITY_DCF_CHANNELS: [u8; 3] = [1, 6, 11];

/// Co-channel coupling radius handed to [`WlanWorld::shard_plan`]:
/// beyond 250 m (and inaudibility, which the plan also checks) two
/// same-channel stations are treated as non-interfering.
pub const CITY_DCF_RANGE_M: f64 = 250.0;

/// Shard-executor worker counts every CITY-DCF point is verified at.
pub const CITY_DCF_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Smallest executor window the point batches the lookahead up to —
/// same rationale as the fuzz harness (barrier crossings are pure
/// overhead; batching is sound because shards are exactly decoupled).
const CITY_DCF_WINDOW_FLOOR: SimDuration = SimDuration::from_micros(64);

/// One CITY-DCF point: the city's shard partition plus the
/// serial-vs-windowed differential outcome and the usual saturation
/// observables, reduced cross-BSS.
pub struct CityDcfPoint {
    /// Grid cells (= BSSes).
    pub cells: usize,
    /// Total stations (cells × (senders + 1)).
    pub stations: usize,
    /// Contending senders per cell.
    pub senders_per_cell: usize,
    /// Virtual milliseconds simulated.
    pub duration_ms: u64,
    /// Shards the plan produced (must equal `cells`).
    pub shards: usize,
    /// The plan's conservative cross-shard lookahead.
    pub lookahead: SimDuration,
    /// The executor window actually used.
    pub window: SimDuration,
    /// Mean per-sender delivered goodput [kbps].
    pub per_station_kbps: f64,
    /// Aggregate delivered goodput [Mbps].
    pub aggregate_mbps: f64,
    /// Jain fairness index over per-BSS completion totals.
    pub jain_cross_bss: f64,
    /// True when every sender city-wide still holds an unserved
    /// backlog at the horizon.
    pub saturated: bool,
    /// Partition-soundness failure on the planning world, if any.
    pub incoherence: Option<String>,
    /// The serial (reference) composition.
    pub serial: ShardRunReport,
    /// Windowed compositions, one per [`CITY_DCF_WORKER_COUNTS`] entry.
    pub windowed: Vec<(usize, ShardRunReport)>,
}

impl CityDcfPoint {
    /// Whether every windowed execution matched the serial reference
    /// byte-for-byte and the plan validated.
    pub fn byte_identical(&self) -> bool {
        self.incoherence.is_none() && self.windowed.iter().all(|(_, r)| *r == self.serial)
    }
}

/// The channel of grid cell `cell` in a `cols`-wide grid.
fn city_dcf_channel(cell: usize, cols: usize) -> u8 {
    let (row, col) = (cell / cols, cell % cols);
    CITY_DCF_CHANNELS[(2 * row + col) % 3]
}

/// Position of local station `local` (0 = sink at the cell centre,
/// 1..=senders on the ring) of grid cell `cell`.
fn city_dcf_pos(cell: usize, cols: usize, local: usize, senders: usize) -> Point {
    let (row, col) = (cell / cols, cell % cols);
    let cx = col as f64 * CITY_DCF_SPACING_M;
    let cy = row as f64 * CITY_DCF_SPACING_M;
    if local == 0 {
        Point::new(cx, cy)
    } else {
        let a = local as f64 / senders as f64 * std::f64::consts::TAU;
        Point::new(
            cx + CITY_DCF_RING_M * a.cos(),
            cy + CITY_DCF_RING_M * a.sin(),
        )
    }
}

/// Per-cell offered backlog: ≈1.25× the collision-free capacity plus a
/// floor, like SCALE-DCF but with a smaller floor — a 96-sender cell
/// completes only a handful of frames per sender, and the city stages
/// every frame up front across hundreds of component worlds.
fn city_dcf_frames_per_sender(senders: usize, duration_ms: u64) -> u64 {
    duration_ms * 1_000 / (120 * senders as u64) + 16
}

fn city_dcf_config(seed: u64, senders: usize, duration_ms: u64) -> MacConfig {
    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    cfg.arf = false;
    cfg.queue_limit = city_dcf_frames_per_sender(senders, duration_ms) as usize;
    cfg
}

/// The full-city planning world: every station of every cell, on the
/// cell's channel, no traffic. Global station ids are cell-major —
/// cell `c` owns ids `c·(senders+1) ..= c·(senders+1)+senders`, local
/// id 0 is the sink.
fn city_dcf_planning_world(
    rows: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
) -> WlanWorld {
    let per_cell = senders + 1;
    let n = rows * cols * per_cell;
    let mut w = WlanWorld::new(city_dcf_config(seed, senders, duration_ms));
    w.add_stations(
        n,
        |g| city_dcf_pos(g / per_cell, cols, g % per_cell, senders),
        |_| Box::new(NullUpper),
    );
    for g in 0..n {
        w.set_channel(g, city_dcf_channel(g / per_cell, cols));
    }
    w
}

/// Builds shard `k` of the city: the member stations (global ids,
/// ascending) at their grid positions on their cell channels, the
/// whole per-sender backlog pre-staged with the SCALE-DCF round-robin
/// stride. Seeded with [`component_seed`] so every shard's RNG stream
/// is independent and reproducible.
fn city_dcf_component(
    members: &[usize],
    k: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
) -> Simulation<WlanWorld> {
    let per_cell = senders + 1;
    let frames_per_sender = city_dcf_frames_per_sender(senders, duration_ms);
    let mut cfg = city_dcf_config(seed, senders, duration_ms);
    cfg.seed = component_seed(seed, k);
    let mut w = WlanWorld::new(cfg);
    w.set_neighbor_cache(true);
    for &g in members {
        w.add_station(
            MacAddr::station(g as u32),
            city_dcf_pos(g / per_cell, cols, g % per_cell, senders),
            Box::new(NullUpper),
        );
    }
    for (local, &g) in members.iter().enumerate() {
        w.set_channel(local, city_dcf_channel(g / per_cell, cols));
    }
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    let stride_ns = duration_ms * 900_000 / (frames_per_sender * senders as u64);
    for (local, &g) in members.iter().enumerate() {
        let (cell, lid) = (g / per_cell, g % per_cell);
        if lid == 0 {
            continue;
        }
        let sink = (cell * per_cell) as u32;
        for f in 0..frames_per_sender {
            let j = f * senders as u64 + (lid as u64 - 1);
            inject_at(
                &mut sim,
                SimTime::from_nanos(j * stride_ns),
                local,
                data_frame(g as u32, sink, SCALE_DCF_PAYLOAD),
            );
        }
    }
    sim
}

/// Runs one CITY-DCF point: plan the partition on the full planning
/// world, execute the composition serially (keeping the component
/// worlds for per-BSS observables), then re-execute under the
/// windowed shard executor at each worker count and digest everything
/// in shard order for the byte-identity comparison.
pub fn city_dcf_point(
    rows: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
) -> CityDcfPoint {
    let cells = rows * cols;
    let per_cell = senders + 1;
    let planning = city_dcf_planning_world(rows, cols, senders, duration_ms, seed);
    let plan = planning.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let incoherence = planning
        .shard_plan_incoherence(&plan, SimTime::ZERO)
        .map(|i| i.to_string());
    drop(planning);

    let horizon = SimTime::from_millis(duration_ms);
    let window = executor_window(&plan, horizon, CITY_DCF_WINDOW_FLOOR);
    let build = |k: usize| city_dcf_component(&plan.shards[k], k, cols, senders, duration_ms, seed);

    // Serial reference, run by hand so the component worlds stay
    // available for the cross-BSS reduction below.
    let mut sims: Vec<Simulation<WlanWorld>> = (0..plan.shard_count()).map(build).collect();
    let per_shard_events: Vec<u64> = sims.iter_mut().map(|s| s.run_until(horizon)).collect();
    let serial = digest_components(&sims, per_shard_events, horizon, "CITY-DCF");

    // Per-BSS completions and the queue-conservation saturation check,
    // reduced over every component's metrics snapshot.
    let mut cell_completions = vec![0u64; cells];
    let mut saturated = true;
    for (k, sim) in sims.iter().enumerate() {
        let snap = sim.world().metrics_snapshot(horizon);
        let counter = |name: &str, local: usize| -> u64 {
            snap.rows
                .iter()
                .find(|r| {
                    r.kind == "counter"
                        && r.key.layer == "mac"
                        && r.key.name == name
                        && r.key.station == Some(local as u32)
                })
                .map_or(0, |r| r.fields.first().map_or(0, |&(_, v)| v as u64))
        };
        for (local, &g) in plan.shards[k].iter().enumerate() {
            if g % per_cell == 0 {
                continue;
            }
            let done = counter("tx_completions", local);
            cell_completions[g / per_cell] += done;
            let queued = counter("queued", local);
            let failed = counter("tx_failures", local);
            let dropped = counter("queue_drops", local);
            saturated &= queued > done + failed + dropped;
        }
    }
    drop(sims);

    let windowed = CITY_DCF_WORKER_COUNTS
        .iter()
        .map(|&workers| {
            (
                workers,
                run_components_windowed(
                    plan.shard_count(),
                    horizon,
                    window,
                    workers,
                    "CITY-DCF",
                    build,
                ),
            )
        })
        .collect();

    let total: u64 = cell_completions.iter().sum();
    let sum_sq: f64 = cell_completions
        .iter()
        .map(|&c| (c as f64) * (c as f64))
        .sum();
    let jain_cross_bss = if total == 0 {
        0.0
    } else {
        (total as f64) * (total as f64) / (cells as f64 * sum_sq)
    };
    let duration_s = duration_ms as f64 / 1_000.0;
    let goodput_bits = (total * SCALE_DCF_PAYLOAD as u64 * 8) as f64;
    let all_senders = (cells * senders) as f64;
    CityDcfPoint {
        cells,
        stations: cells * per_cell,
        senders_per_cell: senders,
        duration_ms,
        shards: plan.shard_count(),
        lookahead: plan.lookahead,
        window,
        per_station_kbps: goodput_bits / duration_s / all_senders / 1_000.0,
        aggregate_mbps: goodput_bits / duration_s / 1e6,
        jain_cross_bss,
        saturated,
        incoherence,
        serial,
        windowed,
    }
}

/// Runs the city once under a single executor mode — `None` = serial
/// reference, `Some(workers)` = windowed shard executor — and returns
/// the digest report. The perfsuite `shards` section times these
/// calls individually (plan + build + run each time, so the modes pay
/// identical setup cost) and asserts the digests agree.
pub fn city_dcf_run(
    rows: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
    workers: Option<usize>,
) -> ShardRunReport {
    let planning = city_dcf_planning_world(rows, cols, senders, duration_ms, seed);
    let plan = planning.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    drop(planning);
    let horizon = SimTime::from_millis(duration_ms);
    let build = |k: usize| city_dcf_component(&plan.shards[k], k, cols, senders, duration_ms, seed);
    match workers {
        None => run_components_serial(plan.shard_count(), horizon, "CITY-DCF", build),
        Some(w) => {
            let window = executor_window(&plan, horizon, CITY_DCF_WINDOW_FLOOR);
            run_components_windowed(plan.shard_count(), horizon, window, w, "CITY-DCF", build)
        }
    }
}

/// The flagship city size `(rows, cols, senders_per_cell,
/// duration_ms)`: 108 BSSes / 10,476 stations in release (the "≥100
/// BSSes, ≥10k stations" contract), a same-shape 6-cell block in debug
/// where the tier-1 suite re-runs the campaign.
pub fn city_dcf_size() -> (usize, usize, usize, u64) {
    if cfg!(debug_assertions) {
        (2, 3, 4, 40)
    } else {
        (9, 12, 96, 60)
    }
}

/// The densification sweep behind the monotone-collapse claim:
/// `senders_per_cell` values run on a reduced grid (same spacing, same
/// coloring) so per-sender goodput collapses with cell population
/// while the partition stays one-shard-per-cell.
pub fn city_dcf_collapse_sweep() -> (usize, usize, Vec<usize>, u64) {
    if cfg!(debug_assertions) {
        (2, 2, vec![2, 4], 30)
    } else {
        (3, 3, vec![8, 32, 96], 60)
    }
}

/// CITY-DCF — the city-scale shard differential plus the cross-BSS
/// fairness and densification-collapse claims, as an experiment
/// report. Returns the collapse sweep points with the flagship city
/// last.
pub fn city_dcf(seed: u64) -> (Vec<CityDcfPoint>, ExperimentReport) {
    let (s_rows, s_cols, sweep, s_dur) = city_dcf_collapse_sweep();
    let mut points: Vec<CityDcfPoint> = sweep
        .iter()
        .map(|&n| city_dcf_point(s_rows, s_cols, n, s_dur, seed))
        .collect();
    let (rows, cols, senders, duration_ms) = city_dcf_size();
    points.push(city_dcf_point(rows, cols, senders, duration_ms, seed));
    let city = points.last().expect("flagship point");

    // The street gap between neighbouring cells' bounding boxes —
    // what the plan's bbox lookahead should resolve to (± float slack
    // on the ring hull).
    let gap_floor = propagation_delay(CITY_DCF_SPACING_M - 2.0 * CITY_DCF_RING_M - 1.0);
    let gap_ceil = propagation_delay(CITY_DCF_SPACING_M);

    let mut report = ExperimentReport::new(
        "CITY-DCF",
        "Spatially-sharded city of saturated BSSes on channels 1/6/11",
    );
    report
        .claim(
            "the city partitions into exactly one shard per BSS",
            points.iter().all(|p| p.shards == p.cells),
        )
        .claim(
            "every shard plan validates (no coupled pair straddles shards)",
            points.iter().all(|p| p.incoherence.is_none()),
        )
        .claim(
            "windowed shard executor is byte-identical to serial at 1/2/4 workers",
            points.iter().all(|p| p.byte_identical()),
        )
        .claim(
            "cross-shard lookahead resolves the 184 m street gap",
            points
                .iter()
                .all(|p| p.lookahead >= gap_floor && p.lookahead <= gap_ceil),
        )
        .claim(
            "cross-BSS Jain fairness >= 0.95 (symmetric cells, independent streams)",
            points.iter().all(|p| p.jain_cross_bss >= 0.95),
        )
        .claim(
            "per-sender goodput collapses monotonically as cells densify",
            points[..sweep.len()]
                .windows(2)
                .all(|w| w[1].per_station_kbps <= w[0].per_station_kbps),
        )
        .claim(
            "every sender city-wide stays backlogged to the horizon",
            points.iter().all(|p| p.saturated),
        )
        .claim(
            "the flagship city completes under the shard executor",
            city.serial.events > 0 && city.windowed.iter().all(|(_, r)| r.events > 0),
        );
    (points, report)
}

// ---------------------------------------------------------------------
// METRO-DCF — the city swept to metropolitan scale on the grid index
//
// The CITY-DCF street grid, 10k → 100k+ stations. What makes the
// sweep tractable is the spatial hash grid (`wn-mac80211::grid`):
// `shard_plan` unions only 27-cell neighborhoods instead of the O(n²)
// pair scan, the neighbor cache stores sparse grid-keyed rows instead
// of the n×n matrix, and plan re-validation sweeps the same index —
// so construction and planning stay O(n·k) while the event loop stays
// exactly the per-cell component worlds CITY-DCF already runs.
// ---------------------------------------------------------------------

/// Shard-executor worker count each METRO-DCF point is verified at
/// (one count, not CITY-DCF's three — the metro sweep trades executor
/// breadth for deployment scale).
pub const METRO_DCF_WORKER_COUNTS: [usize; 1] = [4];

/// Largest deployment whose planning world also primes the sparse
/// neighbor cache for the build-time/storage observables. Beyond this
/// the rows (n·k entries) stop being an interesting measurement and
/// start being a memory bill; planning itself never needs them.
const METRO_DCF_BUILD_CAP: usize = 20_000;

/// One METRO-DCF point: the metro's grid-backed shard partition, the
/// planning/build wall-clock observables, and the serial-vs-windowed
/// differential outcome.
pub struct MetroDcfPoint {
    /// Grid cells (= BSSes).
    pub cells: usize,
    /// Total stations (cells × (senders + 1)).
    pub stations: usize,
    /// Contending senders per cell.
    pub senders_per_cell: usize,
    /// Virtual milliseconds simulated.
    pub duration_ms: u64,
    /// Shards the plan produced (must equal `cells`).
    pub shards: usize,
    /// The plan's conservative cross-shard lookahead.
    pub lookahead: SimDuration,
    /// The executor window actually used.
    pub window: SimDuration,
    /// Wall-clock of the grid-backed `shard_plan` on the full
    /// planning world [ms].
    pub plan_ms: f64,
    /// Wall-clock of the sparse neighbor-cache build on the planning
    /// world [ms]; `None` above [`METRO_DCF_BUILD_CAP`].
    pub build_ms: Option<f64>,
    /// Pair entries the sparse rows stored (dense would be n·(n−1));
    /// `None` above the build cap.
    pub stored_entries: Option<usize>,
    /// Grid/sparse-row coherence verdict on the primed planning world
    /// (vacuously true above the build cap).
    pub grid_coherent: bool,
    /// Partition-soundness failure on the planning world, if any.
    pub incoherence: Option<String>,
    /// The serial (reference) composition.
    pub serial: ShardRunReport,
    /// Windowed compositions, one per [`METRO_DCF_WORKER_COUNTS`].
    pub windowed: Vec<(usize, ShardRunReport)>,
}

impl MetroDcfPoint {
    /// Whether every windowed execution matched the serial reference
    /// byte-for-byte and the plan validated.
    pub fn byte_identical(&self) -> bool {
        self.incoherence.is_none() && self.windowed.iter().all(|(_, r)| *r == self.serial)
    }

    /// Dense-matrix pair count the sparse rows are measured against.
    pub fn dense_entries(&self) -> usize {
        self.stations * (self.stations - 1)
    }
}

/// The full-metro planning world — [`city_dcf_planning_world`]'s
/// street grid at metro sweep sizes, public so the perfsuite grid
/// section and the fuzz planning-equality leg construct the exact
/// deployment the experiment plans.
pub fn metro_dcf_planning_world(
    rows: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
) -> WlanWorld {
    city_dcf_planning_world(rows, cols, senders, duration_ms, seed)
}

/// The metro sweep `(rows, cols, senders_per_cell, duration_ms)`:
/// 10,476 → 32,980 → 102,238 stations in release (the "100k+
/// stations" contract, on short horizons), same-shape small grids in
/// debug where the tier-1 suite re-runs the campaign.
pub fn metro_dcf_sweep() -> Vec<(usize, usize, usize, u64)> {
    if cfg!(debug_assertions) {
        vec![(2, 2, 3, 20), (3, 3, 3, 20)]
    } else {
        vec![(9, 12, 96, 15), (17, 20, 96, 15), (31, 34, 96, 15)]
    }
}

/// Runs one METRO-DCF point: time the grid-backed plan (and, under
/// the build cap, the sparse neighbor-cache build) on the full
/// planning world, validate the partition, then execute the
/// composition serially and under the windowed shard executor and
/// compare digests.
pub fn metro_dcf_point(
    rows: usize,
    cols: usize,
    senders: usize,
    duration_ms: u64,
    seed: u64,
) -> MetroDcfPoint {
    let cells = rows * cols;
    let per_cell = senders + 1;
    let n = cells * per_cell;
    let mut planning = metro_dcf_planning_world(rows, cols, senders, duration_ms, seed);

    let (build_ms, stored_entries, grid_coherent) = if n <= METRO_DCF_BUILD_CAP {
        let t0 = std::time::Instant::now();
        planning.prime_neighbor_cache(SimTime::ZERO);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stored = planning
            .neighbor_cache_stats()
            .filter(|&(sparse, _)| sparse)
            .map(|(_, entries)| entries);
        let coherent = planning.grid_incoherence(SimTime::ZERO).is_empty();
        (Some(build_ms), stored, coherent)
    } else {
        (None, None, true)
    };

    let t0 = std::time::Instant::now();
    let plan = planning.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let plan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let incoherence = planning
        .shard_plan_incoherence(&plan, SimTime::ZERO)
        .map(|i| i.to_string());
    drop(planning);

    let horizon = SimTime::from_millis(duration_ms);
    let window = executor_window(&plan, horizon, CITY_DCF_WINDOW_FLOOR);
    let build = |k: usize| city_dcf_component(&plan.shards[k], k, cols, senders, duration_ms, seed);
    let serial = run_components_serial(plan.shard_count(), horizon, "METRO-DCF", build);
    let windowed = METRO_DCF_WORKER_COUNTS
        .iter()
        .map(|&w| {
            (
                w,
                run_components_windowed(plan.shard_count(), horizon, window, w, "METRO-DCF", build),
            )
        })
        .collect();

    MetroDcfPoint {
        cells,
        stations: n,
        senders_per_cell: senders,
        duration_ms,
        shards: plan.shard_count(),
        lookahead: plan.lookahead,
        window,
        plan_ms,
        build_ms,
        stored_entries,
        grid_coherent,
        incoherence,
        serial,
        windowed,
    }
}

/// METRO-DCF — the grid-indexed metro sweep as an experiment report.
pub fn metro_dcf(seed: u64) -> (Vec<MetroDcfPoint>, ExperimentReport) {
    let points: Vec<MetroDcfPoint> = metro_dcf_sweep()
        .into_iter()
        .map(|(rows, cols, senders, dur)| metro_dcf_point(rows, cols, senders, dur, seed))
        .collect();
    let flagship = points.last().expect("non-empty sweep");

    // The scale contract: 100k+ stations in release; in debug the
    // tier-1 suite runs the same shapes shrunk, so the bar shrinks
    // with them.
    let scale_floor = if cfg!(debug_assertions) { 36 } else { 100_000 };
    // The storage contract on the last point under the build cap:
    // release demands the sparse rows beat the dense matrix 10×; the
    // shrunk debug grids only reach strict improvement (their corner
    // cells are barely out of reach of each other).
    let sparsity_ok = match points
        .iter()
        .rev()
        .find_map(|p| p.stored_entries.map(|s| (s, p.dense_entries())))
    {
        Some((stored, dense)) => {
            if cfg!(debug_assertions) {
                stored < dense
            } else {
                stored.saturating_mul(10) <= dense
            }
        }
        None => false,
    };

    let mut report = ExperimentReport::new(
        "METRO-DCF",
        "Grid-indexed metropolitan street grid, 10k -> 100k+ stations",
    );
    report
        .claim(
            "the metro partitions into exactly one shard per street cell",
            points.iter().all(|p| p.shards == p.cells),
        )
        .claim(
            "every grid-backed shard plan validates against the live world",
            points.iter().all(|p| p.incoherence.is_none()),
        )
        .claim(
            "windowed shard executor is byte-identical to serial",
            points.iter().all(|p| p.byte_identical()),
        )
        .claim(
            "the sweep reaches metropolitan scale",
            flagship.stations >= scale_floor,
        )
        .claim(
            "sparse grid rows beat the dense neighbor matrix",
            sparsity_ok,
        )
        .claim(
            "the spatial grid index stays coherent on every primed planning world",
            points.iter().all(|p| p.grid_coherent),
        );
    (points, report)
}

// ---------------------------------------------------------------------
// DENSE-OBSS — EDCA/A-MPDU apartment block
//
// An apartment block of QoS BSSes: APs every 10 m on channels 1/6/11
// (same coloring as CITY-DCF, but here co-channel cells are well
// inside carrier-sense range, so every channel is one overlapping
// contention domain). Each AP saturates a downlink to its own client
// with a fixed per-AC traffic mix through the EDCA queues and A-MPDU
// aggregation; the sweep densifies the block and watches per-AC
// latency quantiles grow while AC_VO stays ahead of AC_BE and airtime
// stays Jain-fair inside each co-channel class.
// ---------------------------------------------------------------------

/// Flat-to-flat spacing between neighbouring APs [m].
pub const DENSE_OBSS_SPACING_M: f64 = 10.0;

/// Client offset from its AP [m].
pub const DENSE_OBSS_CLIENT_M: f64 = 2.0;

/// Payload bytes per MSDU in the DENSE-OBSS downlink.
pub const DENSE_OBSS_PAYLOAD: usize = 800;

/// Per-AP offered rate in frames per millisecond (≈ 12 Mbps at the
/// 800-B payload): a lone AP is comfortably stable, two co-channel
/// neighbours are near the knee, three or more overload the channel —
/// the regime where per-AC latency growth with density is measurable.
pub const DENSE_OBSS_FRAMES_PER_MS: u64 = 2;

/// Offered traffic mix in percent per access category (VO/VI/BE/BK).
pub const DENSE_OBSS_MIX: [u64; 4] = [15, 15, 40, 30];

/// One DENSE-OBSS sweep point.
pub struct DenseObssPoint {
    /// Grid shape (rows, cols).
    pub grid: (usize, usize),
    /// APs in the block (= BSSes = grid cells).
    pub aps: usize,
    /// Total stations (2 per cell: AP + client).
    pub stations: usize,
    /// Largest co-channel class in the block.
    pub cochannel_max: usize,
    /// Virtual milliseconds simulated.
    pub duration_ms: u64,
    /// Per-AC access-delay p50 [µs], indexed by `AccessCategory`.
    pub ac_p50_us: [u64; 4],
    /// Per-AC access-delay p99 [µs], indexed by `AccessCategory`.
    pub ac_p99_us: [u64; 4],
    /// Worst Jain index over per-AP airtime within one co-channel
    /// class (classes of one AP are trivially fair and skipped).
    pub jain_airtime_within_class: f64,
    /// MSDUs offered block-wide.
    pub offered: u64,
    /// MSDUs delivered block-wide.
    pub completed: u64,
    /// Aggregate delivered goodput [Mbps].
    pub aggregate_mbps: f64,
}

impl DenseObssPoint {
    /// Delivered fraction of the offered backlog.
    pub fn delivered_frac(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }
}

/// The channel of grid cell `cell` — CITY-DCF's coloring, reused so
/// the two families stay comparable.
fn dense_obss_channel(cell: usize, cols: usize) -> u8 {
    city_dcf_channel(cell, cols)
}

/// Builds the apartment block and stages every AP's per-AC downlink
/// backlog, spread over 90 % of the horizon with a per-AP/per-AC phase
/// so injections never synchronise block-wide.
fn dense_obss_sim(
    rows: usize,
    cols: usize,
    duration_ms: u64,
    seed: u64,
    mix: [u64; 4],
    ampdu_max_mpdus: usize,
) -> Simulation<WlanWorld> {
    let cells = rows * cols;
    let counts = {
        let total = DENSE_OBSS_FRAMES_PER_MS * duration_ms;
        mix.map(|pct| (total * pct / 100).max(1))
    };
    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    cfg.arf = false;
    cfg.edca = true;
    cfg.ampdu_max_mpdus = ampdu_max_mpdus;
    cfg.queue_limit = counts.iter().sum::<u64>() as usize + 4;
    let mut w = WlanWorld::new(cfg);
    w.set_neighbor_cache(true);
    for cell in 0..cells {
        let (row, col) = (cell / cols, cell % cols);
        let cx = col as f64 * DENSE_OBSS_SPACING_M;
        let cy = row as f64 * DENSE_OBSS_SPACING_M;
        let ap = w.add_station(
            MacAddr::station(2 * cell as u32),
            Point::new(cx, cy),
            Box::new(NullUpper),
        );
        let client = w.add_station(
            MacAddr::station(2 * cell as u32 + 1),
            Point::new(cx + DENSE_OBSS_CLIENT_M, cy),
            Box::new(NullUpper),
        );
        let ch = dense_obss_channel(cell, cols);
        w.set_channel(ap, ch);
        w.set_channel(client, ch);
    }
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    let horizon_ns = duration_ms * 900_000; // inject over 90 %
    for cell in 0..cells {
        let ap = 2 * cell;
        for (aci, &n) in counts.iter().enumerate() {
            let ac = AccessCategory::from_index(aci).expect("4 ACs");
            let stride = horizon_ns / n;
            let phase = (cell as u64 * 131 + aci as u64 * 37) * 1_000;
            for f in 0..n {
                qos_inject_at(
                    &mut sim,
                    SimTime::from_nanos(f * stride + phase % stride.max(1)),
                    ap,
                    data_frame(2 * cell as u32, 2 * cell as u32 + 1, DENSE_OBSS_PAYLOAD),
                    ac,
                );
            }
        }
    }
    sim
}

/// Runs one DENSE-OBSS point and reduces the per-AC and per-class
/// observables.
pub fn dense_obss_point(
    rows: usize,
    cols: usize,
    duration_ms: u64,
    seed: u64,
    mix: [u64; 4],
) -> DenseObssPoint {
    dense_obss_point_opts(rows, cols, duration_ms, seed, mix, 16)
}

/// [`dense_obss_point`] with the A-MPDU aggregation cap exposed —
/// `ampdu_max_mpdus = 1` degenerates to one MPDU per TXOP (aggregation
/// effectively off), which is what the perfsuite `qos` section races
/// against the default cap on the same saturated block.
pub fn dense_obss_point_opts(
    rows: usize,
    cols: usize,
    duration_ms: u64,
    seed: u64,
    mix: [u64; 4],
    ampdu_max_mpdus: usize,
) -> DenseObssPoint {
    let cells = rows * cols;
    let mut sim = dense_obss_sim(rows, cols, duration_ms, seed, mix, ampdu_max_mpdus);
    sim.run_until(SimTime::from_millis(duration_ms));
    let w = sim.world();

    let mut ac_p50_us = [0u64; 4];
    let mut ac_p99_us = [0u64; 4];
    for ac in AccessCategory::ALL {
        ac_p50_us[ac.index()] = w.ac_delay_quantile(ac, 0.5).unwrap_or(0);
        ac_p99_us[ac.index()] = w.ac_delay_quantile(ac, 0.99).unwrap_or(0);
    }

    // Airtime fairness inside each co-channel class of APs.
    let mut class_airtimes: std::collections::BTreeMap<u8, Vec<f64>> = Default::default();
    for cell in 0..cells {
        class_airtimes
            .entry(dense_obss_channel(cell, cols))
            .or_default()
            .push(w.station_airtime_us(2 * cell) as f64);
    }
    let mut jain_min = 1.0f64;
    for xs in class_airtimes.values().filter(|xs| xs.len() > 1) {
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq > 0.0 {
            jain_min = jain_min.min(sum * sum / (xs.len() as f64 * sum_sq));
        } else {
            jain_min = 0.0;
        }
    }
    let cochannel_max = class_airtimes.values().map(Vec::len).max().unwrap_or(0);

    let counts = {
        let total = DENSE_OBSS_FRAMES_PER_MS * duration_ms;
        mix.map(|pct| (total * pct / 100).max(1))
    };
    let offered = counts.iter().sum::<u64>() * cells as u64;
    let completed: u64 = (0..cells).map(|c| w.stats(2 * c).tx_completions).sum();
    let duration_s = duration_ms as f64 / 1_000.0;
    DenseObssPoint {
        grid: (rows, cols),
        aps: cells,
        stations: 2 * cells,
        cochannel_max,
        duration_ms,
        ac_p50_us,
        ac_p99_us,
        jain_airtime_within_class: jain_min,
        offered,
        completed,
        aggregate_mbps: (completed * DENSE_OBSS_PAYLOAD as u64 * 8) as f64 / duration_s / 1e6,
    }
}

/// The density sweep `(rows, cols)` list and horizon: up to a 25-AP
/// block in release ("tens of APs"), a 2-point miniature in debug
/// where tier-1 re-runs the campaign.
pub fn dense_obss_sweep() -> (Vec<(usize, usize)>, u64) {
    if cfg!(debug_assertions) {
        (vec![(2, 2), (3, 3)], 40)
    } else {
        (vec![(2, 2), (3, 3), (4, 4), (5, 5)], 120)
    }
}

/// DENSE-OBSS — the EDCA/A-MPDU densification sweep as an experiment
/// report. Returns the density sweep on the balanced mix, then the
/// flagship grid re-run on a data-heavy mix (the traffic-class-mix
/// axis) as the last point.
pub fn dense_obss(seed: u64) -> (Vec<DenseObssPoint>, ExperimentReport) {
    let (sweep, duration_ms) = dense_obss_sweep();
    let mut points: Vec<DenseObssPoint> = sweep
        .iter()
        .map(|&(r, c)| dense_obss_point(r, c, duration_ms, seed, DENSE_OBSS_MIX))
        .collect();
    let &(fr, fc) = sweep.last().expect("non-empty sweep");
    points.push(dense_obss_point(fr, fc, duration_ms, seed, [5, 10, 55, 30]));
    let sweep_pts = &points[..sweep.len()];

    const VO: usize = 0;
    const BE: usize = 2;
    let mut report = ExperimentReport::new(
        "DENSE-OBSS",
        "EDCA/A-MPDU apartment block on channels 1/6/11",
    );
    report
        .claim(
            "per-AC p50 access delay grows with AP density (every AC)",
            sweep_pts.windows(2).all(|w| {
                (0..4).all(|ac| w[1].ac_p50_us[ac] as f64 >= w[0].ac_p50_us[ac] as f64 * 0.95)
            }),
        )
        .claim(
            "AC_VO p99 stays below AC_BE p99 at every density and mix",
            points.iter().all(|p| p.ac_p99_us[VO] < p.ac_p99_us[BE]),
        )
        .claim(
            "airtime Jain >= 0.9 within every co-channel class",
            points.iter().all(|p| p.jain_airtime_within_class >= 0.9),
        )
        .claim(
            "the sparsest block delivers >= 90% of its offered load",
            sweep_pts[0].delivered_frac() >= 0.9,
        )
        .claim(
            "the densest block is overloaded (delivery strictly below offered)",
            sweep_pts.last().expect("non-empty").completed
                < sweep_pts.last().expect("non-empty").offered,
        )
        .claim(
            "every point delivers traffic on all four ACs",
            points.iter().all(|p| p.ac_p99_us.iter().all(|&q| q > 0)),
        );
    (points, report)
}

// ---------------------------------------------------------------------
// Observability exports
//
// One compact, fully deterministic instrumented run per protocol layer.
// Each returns `(trace_jsonl, metrics_jsonl)` tagged with the
// experiment id; the campaign runner concatenates them in registry
// order for `report --trace-json` / `--metrics-json`.
// ---------------------------------------------------------------------

/// FIG-1.6 observability: a short 802.11g saturation run (3 senders,
/// one sink, RTS on so the Rts/Cts exchange shows up in the trace).
pub fn observe_fig_1_6(seed: u64) -> (String, String) {
    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    cfg.rts_threshold = 500;
    let mut w = WlanWorld::new(cfg);
    w.add_station(
        MacAddr::station(0),
        Point::new(0.0, 0.0),
        Box::new(NullUpper),
    );
    for i in 1..=3usize {
        let a = i as f64 / 3.0 * std::f64::consts::TAU;
        w.add_station(
            MacAddr::station(i as u32),
            Point::new(8.0 * a.cos(), 8.0 * a.sin()),
            Box::new(NullUpper),
        );
    }
    let mut sim = Simulation::new(w);
    boot(&mut sim);
    for i in 1..=3u64 {
        for k in 0..40u64 {
            inject_at(
                &mut sim,
                SimTime::from_micros(k * 2_000),
                i as usize,
                data_frame(i as u32, 0, 1000),
            );
        }
    }
    let end = SimTime::from_millis(200);
    sim.run_until(end);
    (
        sim.world().trace.to_jsonl("FIG-1.6"),
        sim.world().metrics_snapshot(end).to_jsonl("FIG-1.6"),
    )
}

/// FIG-1.10 observability: a compressed ESS roam (walker crosses two
/// cells) plus a power-save STA, so Assoc/Handoff/PowerSave events all
/// appear alongside the MAC-level trace.
pub fn observe_fig_1_10(seed: u64) -> (String, String) {
    use wn_net80211::sta::StaConfig;
    let ssid = Ssid::new("Obs110").expect("valid ssid");
    let mut mac = MacConfig::new(PhyStandard::Dot11g);
    mac.seed = seed;
    let mut ps = StaConfig::open(ssid.clone(), vec![1, 6]);
    ps.power_save = true;
    let mut ess = EssBuilder::new(mac, ssid)
        .ap(Point::new(0.0, 0.0), 1)
        .ap(Point::new(170.0, 0.0), 6)
        .sta(Point::new(10.0, 0.0)) // The walker.
        .sta_with(Point::new(5.0, 5.0), ps) // The dozer.
        .build();
    // Keep the export compact: Info+ records only (assoc, handoff,
    // drops); the Debug-level per-frame firehose stays internal.
    ess.sim
        .world_mut()
        .trace
        .set_min_level(wn_sim::trace::Level::Info);
    ess.sim.run_until(SimTime::from_secs(2));
    let walker = ess.sta_ids[0];
    schedule_walk(
        &mut ess.sim,
        walker,
        Point::new(10.0, 0.0),
        Point::new(160.0, 0.0),
        6.0,
        SimDuration::from_millis(200),
        SimTime::from_secs(2),
    );
    let end = SimTime::from_secs(32);
    ess.sim.run_until(end);
    (
        ess.sim.world().trace.to_jsonl("FIG-1.10"),
        ess.sim.world().metrics_snapshot(end).to_jsonl("FIG-1.10"),
    )
}

/// FIG-1.2 observability: one piconet (master + 3 slaves) polled for a
/// second — Join events at setup, Poll events per TDD exchange.
pub fn observe_fig_1_2() -> (String, String) {
    use wn_wpan::bluetooth::{boot as bt_boot, BtNetwork, DeviceClass};
    let mut net = BtNetwork::new();
    let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
    let p = net.form_piconet(m).expect("fresh master");
    for i in 0..3 {
        let s = net.add_device(Point::new(1.0, i as f64), DeviceClass::Class2);
        net.join(p, s).expect("in range");
        net.send(m, s, 100_000);
    }
    let mut sim = Simulation::new(net);
    bt_boot(&mut sim);
    let end = SimTime::from_secs(1);
    sim.run_until(end);
    (
        sim.world().trace.to_jsonl("FIG-1.2"),
        sim.world().metrics_snapshot(end).to_jsonl("FIG-1.2"),
    )
}

/// FIG-1.4 observability: a small ZigBee cluster tree — Join events
/// for every parent link, then Forward/Deliver hops leaf-to-leaf.
pub fn observe_fig_1_4(seed: u64) -> (String, String) {
    use wn_wpan::zigbee::{NodeRole, Topology, ZigbeeEvent, ZigbeeNetwork};
    let mut net = ZigbeeNetwork::new(Topology::ClusterTree, seed);
    let coord = net
        .add_node(Point::new(0.0, 0.0), NodeRole::Ffd)
        .expect("coordinator");
    let mut leaves = Vec::new();
    for i in 0..2 {
        let router = net
            .add_node(Point::new(8.0, i as f64 * 8.0 - 4.0), NodeRole::Ffd)
            .expect("router");
        net.set_parent(router, coord).expect("ffd parent");
        let leaf = net
            .add_node(Point::new(15.0, i as f64 * 8.0 - 4.0), NodeRole::Rfd)
            .expect("leaf");
        net.set_parent(leaf, router).expect("ffd parent");
        leaves.push(leaf);
    }
    let mut sim = Simulation::new(net);
    for k in 0..10u64 {
        sim.scheduler_mut().schedule_at(
            SimTime::from_millis(k * 50),
            ZigbeeEvent::Send {
                src: leaves[0],
                dst: leaves[1],
                bytes: 60,
            },
        );
    }
    let end = SimTime::from_secs(2);
    sim.run_until(end);
    (
        sim.world().trace.to_jsonl("FIG-1.4"),
        sim.world().metrics_snapshot(end).to_jsonl("FIG-1.4"),
    )
}

/// FIG-1.7 observability: a WiMAX base station granting three service
/// classes over 100 frames — Grant events per scheduled burst.
pub fn observe_fig_1_7() -> (String, String) {
    use wn_wman::link::WimaxLink;
    use wn_wman::scheduler::{boot as wimax_boot, BaseStation, ServiceClass, WimaxEvent};
    let mut bs = BaseStation::new(WimaxLink::default());
    let ugs = bs
        .add_subscriber(2_000.0, false, ServiceClass::Ugs, 2e6)
        .expect("in range");
    let rtps = bs
        .add_subscriber(8_000.0, false, ServiceClass::Rtps, 1e6)
        .expect("in range");
    let be = bs
        .add_subscriber(15_000.0, false, ServiceClass::BestEffort, 0.0)
        .expect("in range");
    let mut sim = Simulation::new(bs);
    wimax_boot(&mut sim);
    for t in 0..5u64 {
        for &ss in &[ugs, rtps, be] {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::Offer { ss, bytes: 200_000 },
            );
        }
        sim.scheduler_mut().schedule_at(
            SimTime::from_millis(t * 100),
            WimaxEvent::OfferUplink {
                ss: rtps,
                bytes: 50_000,
            },
        );
    }
    let end = SimTime::from_millis(500);
    sim.run_until(end);
    (
        sim.world().trace.to_jsonl("FIG-1.7"),
        sim.world().metrics_snapshot(end).to_jsonl("FIG-1.7"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_has_all_13_technologies() {
        let fig = fig_1_1_classification();
        assert_eq!(fig.series.len(), 13);
    }

    #[test]
    fn bluetooth_figure_passes() {
        let (fig, report) = fig_1_2_bluetooth();
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(fig.series[0].points.len(), 7);
    }

    #[test]
    fn irda_figure_passes() {
        let (_fig, report) = fig_2_irda();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn zigbee_figure_passes() {
        let (_fig, report) = fig_1_4_zigbee(3);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn uwb_figure_passes() {
        let (_fig, report) = fig_1_5_uwb();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn wlan_home_passes() {
        let (_fig, report) = fig_1_6_wlan_home(7);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn wimax_passes() {
        let (_fig, report) = fig_1_7_wimax();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn wwan_passes() {
        let (_fig, report) = fig_1_8_wwan();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn ibss_vs_bss_passes() {
        let (_fig, report) = fig_1_9_ibss_vs_bss(11);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn roaming_passes() {
        let (outcome, report) = fig_1_10_ess_roaming(5);
        assert!(report.passed(), "{:?}\n{}", outcome, report.to_markdown());
        assert!(outcome.handoff_gap_s.is_some());
    }

    #[test]
    fn frame_overhead_passes() {
        let (_fig, report) = fig_1_12_frame_overhead();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn phy_ladder_passes() {
        let (_fig, report) = fig_1_13_phy_ladder();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn security_ranking_passes() {
        let (_fig, report) = sec_ranking();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn tradeoffs_pass() {
        let (_fig, report) = adv_tradeoffs(13);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn cw_sweep_ablation_passes() {
        let (_fig, report) = ablation_cw_sweep(17);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn capture_ablation_passes() {
        let (_fig, report) = ablation_capture(19);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn arf_ablation_passes() {
        let (_fig, report) = ablation_arf(23);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn energy_budget_passes() {
        let (_fig, report) = energy_budget();
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn fading_link_passes() {
        let (_fig, report) = fading_link(37);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn adjacent_channels_passes() {
        let (_fig, report) = adjacent_channels(29);
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn table_8_1_passes() {
        let report = table_8_1();
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(report.comparisons.len(), 13);
    }

    #[test]
    fn scale_dcf_passes() {
        let (points, report) = scale_dcf(11);
        for p in &points {
            eprintln!(
                "SCALE-DCF n={:4} dur={}ms per_station={:.1} kbps agg={:.2} Mbps \
                 jain={:.4} p50={}us p99={}us events={} fnv={:016x}",
                p.stations,
                p.duration_ms,
                p.per_station_kbps,
                p.aggregate_mbps,
                p.jain_fairness,
                p.access_delay_p50_us,
                p.access_delay_p99_us,
                p.events,
                p.metrics_fnv
            );
        }
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(points.len(), scale_dcf_sweep().len());
    }

    #[test]
    fn city_dcf_passes() {
        let (points, report) = city_dcf(11);
        for p in &points {
            eprintln!(
                "CITY-DCF cells={:3} stations={:5} senders/cell={:3} shards={:3} \
                 lookahead={}ns window={}ns jain={:.4} per_sender={:.1} kbps \
                 identical={} trace_fnv={:016x}",
                p.cells,
                p.stations,
                p.senders_per_cell,
                p.shards,
                p.lookahead.as_nanos(),
                p.window.as_nanos(),
                p.jain_cross_bss,
                p.per_station_kbps,
                p.byte_identical(),
                p.serial.trace_fnv,
            );
        }
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(points.len(), city_dcf_collapse_sweep().2.len() + 1);
    }
}
