//! fuzz — the deterministic simulation fuzzer's command-line front end.
//!
//! Run with: `cargo run --release -p wn-bench --bin fuzz -- --seeds 500`
//!
//! Each seed maps to one generated scenario (`wn-check`'s
//! `ScenarioGen`), runs it through the engines single-threaded, and
//! checks the typed trace against every invariant oracle. Seeds are
//! independent, so ranges fan out across workers with identical
//! results for any worker count.
//!
//! Flags:
//! - `--seeds N` — fuzz seeds `start..start+N` (default 500).
//! - `--start S` — first seed of the range (default 0).
//! - `--seed N` — run exactly one seed (overrides `--seeds`/`--start`).
//! - `--shrink` — on violation, minimise the scenario (halve stations,
//!   traffic, duration while it still fails) and print the shrunk
//!   repro before exiting.
//! - `--threads T` — worker count for range runs (default: `WN_THREADS`
//!   env var, else detected parallelism).
//! - `--scheduler heap|wheel` — back end for the single-scheduler
//!   modes (default: the engine default, currently the timer wheel;
//!   `heap` selects the reference binary heap). Ignored by `--dual`,
//!   which always runs both.
//! - `--dual` — differential scheduler mode: replay every seed through
//!   both the binary-heap and timer-wheel back ends and fail unless
//!   the trace and metrics fingerprints are byte-identical.
//! - `--cache-diff` — differential propagation mode: replay every seed
//!   with the neighbor cache on and off and fail unless the trace and
//!   metrics fingerprints are byte-identical (the equivalence contract
//!   of the cached hot path, including under ESS mobility).
//! - `--shard-diff` — differential sharding mode: partition every
//!   seed's deployment into interference shards and replay the
//!   composition serially and under the windowed shard executor at 1,
//!   2 and 4 workers, demanding byte-identical trace and metrics
//!   digests (DESIGN.md §15). Range runs additionally verify a
//!   multi-shard CITY-DCF grid the generated scenarios cannot reach.
//!   Non-medium kinds (Bluetooth/ZigBee/WiMAX) are skipped.
//! - `--grid-diff` — differential spatial-index mode: replay every
//!   seed with the spatial grid index on (sparse neighbor rows,
//!   grid-backed shard planning) and off (exhaustive dense scans) and
//!   fail unless the trace and metrics fingerprints are byte-identical
//!   (the grid's equivalence contract, DESIGN.md §17). Range runs
//!   additionally plan a multi-cell CITY-DCF street grid through both
//!   `shard_plan` and `shard_plan_exhaustive` and demand identical
//!   partitions and lookaheads.
//! - `--qos` — the EDCA/A-MPDU corpus (DESIGN.md §16): every seed maps
//!   to a QoS WLAN world (mixed-AC traffic, aggregation on/off, OBSS
//!   twin cells), each run oracle-checked through both scheduler back
//!   ends, the neighbor cache on/off, and the windowed shard executor,
//!   demanding byte-identical fingerprints throughout. The leg then
//!   runs two gates: the AIFSN-swap fail-point self-test (the planted
//!   AC_VO/AC_BK parameter swap must be caught by the
//!   priority-inversion oracle and shrunk to a small repro) and the
//!   legacy-equivalence differential (the classic 200-seed digest must
//!   still hash to its recorded pre-QoS fingerprint, proving the QoS
//!   machinery is byte-invisible when off).
//!
//! On any violation the process prints one line per failing seed, the
//! one-line repro command, and exits 1.

use wn_check::{
    check_range_gen, check_range_grid, check_range_opts, check_range_with, check_seed_with,
    range_digest, repro_command, run, shard_diff_range, shard_diff_range_gen, shard_diff_seed,
    shrink, station_count, ScenarioGen, ShardDiffReport,
};
use wn_core::scenarios::{city_dcf_point, metro_dcf_planning_world, CITY_DCF_RANGE_M};
use wn_sim::stats::fnv1a;
use wn_sim::{worker_count, SchedulerKind, SimTime};

/// FNV-1a of `range_digest(0, 200, _)` over the classic corpus as
/// recorded *before* the QoS machinery landed. The `--qos` leg
/// recomputes the digest and demands this exact fingerprint: with EDCA
/// off, every scenario, trace and metrics snapshot must remain
/// byte-identical to the pre-QoS engine.
const LEGACY_DIGEST_SEEDS: u64 = 200;
const LEGACY_DIGEST_FNV: u64 = 0x4a49_300b_696f_7708;

struct Options {
    start: u64,
    count: u64,
    single: Option<u64>,
    shrink: bool,
    threads: usize,
    dual: bool,
    cache_diff: bool,
    shard_diff: bool,
    grid_diff: bool,
    qos: bool,
    scheduler: SchedulerKind,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        start: 0,
        count: 500,
        single: None,
        shrink: false,
        threads: worker_count(),
        dual: false,
        cache_diff: false,
        shard_diff: false,
        grid_diff: false,
        qos: false,
        scheduler: SchedulerKind::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i)
                .ok_or_else(|| format!("{} needs a value", args[i - 1]))
        };
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                opts.count = need(i)?
                    .parse()
                    .map_err(|_| "--seeds needs a count".to_string())?;
            }
            "--start" => {
                i += 1;
                opts.start = need(i)?
                    .parse()
                    .map_err(|_| "--start needs a seed".to_string())?;
            }
            "--seed" => {
                i += 1;
                opts.single = Some(
                    need(i)?
                        .parse()
                        .map_err(|_| "--seed needs a seed".to_string())?,
                );
            }
            "--shrink" => opts.shrink = true,
            "--dual" => opts.dual = true,
            "--cache-diff" => opts.cache_diff = true,
            "--shard-diff" => opts.shard_diff = true,
            "--grid-diff" => opts.grid_diff = true,
            "--qos" => opts.qos = true,
            "--scheduler" => {
                i += 1;
                opts.scheduler = need(i)?.parse::<SchedulerKind>()?;
            }
            "--threads" => {
                i += 1;
                opts.threads = need(i)?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--threads needs a count >= 1".to_string())?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Prints the violations for one failing seed; with `--shrink`, also
/// minimises the scenario and prints the shrunk repro.
fn report_failure(seed: u64, summary: &str, violations: &[wn_check::Violation], do_shrink: bool) {
    report_failure_gen(
        &ScenarioGen::default(),
        seed,
        summary,
        violations,
        do_shrink,
    );
}

/// [`report_failure`] under an explicit generator, so `--qos` failures
/// shrink the scenario the QoS corpus actually drew.
fn report_failure_gen(
    gen: &ScenarioGen,
    seed: u64,
    summary: &str,
    violations: &[wn_check::Violation],
    do_shrink: bool,
) {
    println!("seed {seed}: FAIL  {summary}");
    for v in violations {
        println!("  {v}");
    }
    println!("  repro: {}", repro_command(seed));
    if do_shrink {
        let sc = gen.scenario(seed);
        let still_fails = |c: &wn_check::Scenario| !run::check_scenario(c).is_empty();
        let min = shrink(&sc, still_fails);
        println!(
            "  shrunk to {} stations: {}",
            station_count(&min),
            min.summary()
        );
        for v in run::check_scenario(&min) {
            println!("    {v}");
        }
    }
}

/// Differential scheduler mode: the same seed range through both
/// queue back ends, seed by seed, demanding identical fingerprints.
/// Returns the number of disagreeing or violating seeds.
fn run_dual(opts: &Options) -> u64 {
    let (start, count) = match opts.single {
        Some(seed) => (seed, 1),
        None => (opts.start, opts.count),
    };
    let t0 = std::time::Instant::now();
    let heap = check_range_with(start, count, opts.threads, SchedulerKind::BinaryHeap);
    let wheel = check_range_with(start, count, opts.threads, SchedulerKind::TimerWheel);
    let mut failures = 0u64;
    for (h, w) in heap.iter().zip(&wheel) {
        let agree =
            h.events == w.events && h.trace_fnv == w.trace_fnv && h.metrics_fnv == w.metrics_fnv;
        if !agree {
            failures += 1;
            println!(
                "seed {}: SCHEDULER DIVERGENCE  {}\n  heap:  events={} trace_fnv={:016x} metrics_fnv={:016x}\n  wheel: events={} trace_fnv={:016x} metrics_fnv={:016x}",
                h.seed, h.summary, h.events, h.trace_fnv, h.metrics_fnv, w.events, w.trace_fnv, w.metrics_fnv
            );
            println!("  repro: {} --dual", repro_command(h.seed));
        }
        if !h.violations.is_empty() {
            failures += 1;
            report_failure(h.seed, &h.summary, &h.violations, opts.shrink);
        }
    }
    println!(
        "dual-scheduler fuzz: {} seeds ({}..{}) x {{heap, wheel}} on {} workers in {:.2}s: {} failing",
        count,
        start,
        start + count,
        opts.threads,
        t0.elapsed().as_secs_f64(),
        failures
    );
    failures
}

/// Differential propagation mode: the same seed range with the
/// neighbor cache on vs off, seed by seed, demanding identical
/// fingerprints. Returns the number of disagreeing or violating seeds.
fn run_cache_diff(opts: &Options) -> u64 {
    let (start, count) = match opts.single {
        Some(seed) => (seed, 1),
        None => (opts.start, opts.count),
    };
    let t0 = std::time::Instant::now();
    let kind = opts.scheduler;
    let cached = check_range_opts(start, count, opts.threads, kind, true);
    let direct = check_range_opts(start, count, opts.threads, kind, false);
    let mut failures = 0u64;
    for (c, d) in cached.iter().zip(&direct) {
        let agree =
            c.events == d.events && c.trace_fnv == d.trace_fnv && c.metrics_fnv == d.metrics_fnv;
        if !agree {
            failures += 1;
            println!(
                "seed {}: NEIGHBOR-CACHE DIVERGENCE  {}\n  cached: events={} trace_fnv={:016x} metrics_fnv={:016x}\n  direct: events={} trace_fnv={:016x} metrics_fnv={:016x}",
                c.seed, c.summary, c.events, c.trace_fnv, c.metrics_fnv, d.events, d.trace_fnv, d.metrics_fnv
            );
            println!("  repro: {} --cache-diff", repro_command(c.seed));
        }
        if !c.violations.is_empty() {
            failures += 1;
            report_failure(c.seed, &c.summary, &c.violations, opts.shrink);
        }
    }
    println!(
        "cache-diff fuzz: {} seeds ({}..{}) x {{cached, direct}} on {} workers in {:.2}s: {} failing",
        count,
        start,
        start + count,
        opts.threads,
        t0.elapsed().as_secs_f64(),
        failures
    );
    failures
}

/// Differential spatial-index mode: the same seed range with the grid
/// index on (sparse rows, grid shard planning) vs off (exhaustive
/// dense scans), demanding identical fingerprints, plus a fixed
/// multi-cell CITY-DCF planning world compared pair-for-pair through
/// the grid and exhaustive planners. Returns the number of failures.
fn run_grid_diff(opts: &Options) -> u64 {
    let (start, count) = match opts.single {
        Some(seed) => (seed, 1),
        None => (opts.start, opts.count),
    };
    let t0 = std::time::Instant::now();
    let gridded = check_range_grid(start, count, opts.threads, true);
    let exhaustive = check_range_grid(start, count, opts.threads, false);
    let mut failures = 0u64;
    for (g, e) in gridded.iter().zip(&exhaustive) {
        let agree =
            g.events == e.events && g.trace_fnv == e.trace_fnv && g.metrics_fnv == e.metrics_fnv;
        if !agree {
            failures += 1;
            println!(
                "seed {}: GRID DIVERGENCE  {}\n  grid:       events={} trace_fnv={:016x} metrics_fnv={:016x}\n  exhaustive: events={} trace_fnv={:016x} metrics_fnv={:016x}",
                g.seed, g.summary, g.events, g.trace_fnv, g.metrics_fnv, e.events, e.trace_fnv, e.metrics_fnv
            );
            println!("  repro: {} --grid-diff", repro_command(g.seed));
        }
        if !g.violations.is_empty() {
            failures += 1;
            report_failure(g.seed, &g.summary, &g.violations, opts.shrink);
        }
    }

    // The planning leg: a street grid the scenario generator cannot
    // produce, planned through the grid index and the exhaustive O(n²)
    // scan. Both partitions, lookaheads and re-validation verdicts
    // must match exactly.
    let world = metro_dcf_planning_world(3, 4, 12, 60, 42);
    let grid_plan = world.shard_plan(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    let exhaustive_plan = world.shard_plan_exhaustive(SimTime::ZERO, Some(CITY_DCF_RANGE_M));
    if grid_plan.shard_of != exhaustive_plan.shard_of
        || grid_plan.lookahead != exhaustive_plan.lookahead
    {
        failures += 1;
        println!(
            "CITY-DCF planning: GRID DIVERGENCE  grid {} shards lookahead {:?} vs exhaustive {} shards lookahead {:?}",
            grid_plan.shards.len(),
            grid_plan.lookahead,
            exhaustive_plan.shards.len(),
            exhaustive_plan.lookahead
        );
    }
    let grid_verdict = world.shard_plan_incoherence(&grid_plan, SimTime::ZERO);
    let exhaustive_verdict = world.shard_plan_incoherence_exhaustive(&grid_plan, SimTime::ZERO);
    if grid_verdict.is_some() || exhaustive_verdict.is_some() {
        failures += 1;
        println!(
            "CITY-DCF planning: INCOHERENT PLAN  grid verdict {grid_verdict:?}, exhaustive verdict {exhaustive_verdict:?}"
        );
    }

    println!(
        "grid-diff fuzz: {} seeds ({}..{}) x {{grid, exhaustive}} + a {}-station CITY-DCF planning check on {} workers in {:.2}s: {} failing",
        count,
        start,
        start + count,
        grid_plan.shard_of.len(),
        opts.threads,
        t0.elapsed().as_secs_f64(),
        failures
    );
    failures
}

/// Prints one failing shard differential, dual-style: the serial
/// reference digests against every diverging windowed execution, plus
/// any partition-soundness failure.
fn report_shard_divergence(r: &ShardDiffReport) {
    println!(
        "seed {}: SHARD DIVERGENCE  {} ({} shards)",
        r.seed, r.summary, r.shards
    );
    if let Some(why) = &r.incoherence {
        println!("  plan incoherent: {why}");
    }
    println!(
        "  serial:     events={} trace_fnv={:016x} metrics_fnv={:016x}",
        r.serial.events, r.serial.trace_fnv, r.serial.metrics_fnv
    );
    for (workers, w) in &r.windowed {
        if *w != r.serial {
            println!(
                "  {workers} worker(s): events={} trace_fnv={:016x} metrics_fnv={:016x}",
                w.events, w.trace_fnv, w.metrics_fnv
            );
        }
    }
    println!("  repro: {} --shard-diff", repro_command(r.seed));
}

/// Differential sharding mode: every seed's deployment partitioned and
/// replayed serial-vs-windowed; range runs add a fixed multi-shard
/// CITY-DCF grid (12 cells on channels 1/6/11 — deeper than any
/// generated scenario shards). Returns the number of failing seeds.
fn run_shard_diff(opts: &Options) -> u64 {
    let t0 = std::time::Instant::now();
    let mut failures = 0u64;
    if let Some(seed) = opts.single {
        match shard_diff_seed(seed) {
            None => println!("seed {seed}: skip (no shared medium to partition)"),
            Some(r) if r.divergent() => {
                failures += 1;
                report_shard_divergence(&r);
            }
            Some(r) => println!(
                "seed {seed}: ok  {} ({} shards, {} events, trace_fnv={:016x})",
                r.summary, r.shards, r.serial.events, r.serial.trace_fnv
            ),
        }
        if failures > 0 {
            return failures;
        }
        println!("shard-diff: seed {seed} byte-identical across {{serial, 1, 2, 4 workers}}");
        return 0;
    }

    let reports = shard_diff_range(opts.start, opts.count, opts.threads);
    let (mut skipped, mut ran, mut multi) = (0u64, 0u64, 0u64);
    for r in &reports {
        match r {
            None => skipped += 1,
            Some(r) => {
                ran += 1;
                if r.shards > 1 {
                    multi += 1;
                }
                if r.divergent() {
                    failures += 1;
                    report_shard_divergence(r);
                }
            }
        }
    }

    // The city leg: a grid the scenario generator cannot produce —
    // every cell its own shard, all worker counts, byte-identical.
    let city = city_dcf_point(3, 4, 12, 60, 42);
    if !city.byte_identical() {
        failures += 1;
        println!(
            "CITY-DCF grid: SHARD DIVERGENCE  {} cells -> {} shards{}",
            city.cells,
            city.shards,
            city.incoherence
                .as_deref()
                .map(|w| format!("  (plan incoherent: {w})"))
                .unwrap_or_default()
        );
        println!(
            "  serial:     events={} trace_fnv={:016x} metrics_fnv={:016x}",
            city.serial.events, city.serial.trace_fnv, city.serial.metrics_fnv
        );
        for (workers, w) in &city.windowed {
            if *w != city.serial {
                println!(
                    "  {workers} worker(s): events={} trace_fnv={:016x} metrics_fnv={:016x}",
                    w.events, w.trace_fnv, w.metrics_fnv
                );
            }
        }
    }

    println!(
        "shard-diff fuzz: {} seeds ({}..{}) x {{serial, 1, 2, 4 workers}} + a {}-cell CITY-DCF grid on {} workers in {:.2}s: {} failing ({} run, {} multi-shard, {} skipped)",
        opts.count,
        opts.start,
        opts.start + opts.count,
        city.cells,
        opts.threads,
        t0.elapsed().as_secs_f64(),
        failures,
        ran,
        multi,
        skipped
    );
    failures
}

/// The QoS corpus leg: oracle-checked EDCA/A-MPDU worlds across both
/// scheduler back ends, the neighbor cache on/off and the windowed
/// shard executor, then the AIFSN-swap self-test and the
/// legacy-equivalence differential. Returns the number of failures.
fn run_qos(opts: &Options) -> u64 {
    let (start, count) = match opts.single {
        Some(seed) => (seed, 1),
        None => (opts.start, opts.count),
    };
    let t0 = std::time::Instant::now();
    let gen = ScenarioGen::with_qos();
    let mut failures = 0u64;

    // Leg 1: oracle sweep through both schedulers, fingerprints equal.
    let heap = check_range_gen(
        gen,
        start,
        count,
        opts.threads,
        SchedulerKind::BinaryHeap,
        true,
    );
    let wheel = check_range_gen(
        gen,
        start,
        count,
        opts.threads,
        SchedulerKind::TimerWheel,
        true,
    );
    for (h, w) in heap.iter().zip(&wheel) {
        if h.events != w.events || h.trace_fnv != w.trace_fnv || h.metrics_fnv != w.metrics_fnv {
            failures += 1;
            println!(
                "seed {}: SCHEDULER DIVERGENCE (qos)  {}\n  heap:  events={} trace_fnv={:016x} metrics_fnv={:016x}\n  wheel: events={} trace_fnv={:016x} metrics_fnv={:016x}",
                h.seed, h.summary, h.events, h.trace_fnv, h.metrics_fnv, w.events, w.trace_fnv, w.metrics_fnv
            );
        }
        if !h.violations.is_empty() {
            failures += 1;
            report_failure_gen(&gen, h.seed, &h.summary, &h.violations, opts.shrink);
        }
    }

    // Leg 2: the cached propagation path against the direct one.
    let direct = check_range_gen(
        gen,
        start,
        count,
        opts.threads,
        SchedulerKind::TimerWheel,
        false,
    );
    for (c, d) in wheel.iter().zip(&direct) {
        if c.events != d.events || c.trace_fnv != d.trace_fnv || c.metrics_fnv != d.metrics_fnv {
            failures += 1;
            println!(
                "seed {}: NEIGHBOR-CACHE DIVERGENCE (qos)  {}\n  cached: events={} trace_fnv={:016x} metrics_fnv={:016x}\n  direct: events={} trace_fnv={:016x} metrics_fnv={:016x}",
                c.seed, c.summary, c.events, c.trace_fnv, c.metrics_fnv, d.events, d.trace_fnv, d.metrics_fnv
            );
        }
    }

    // Leg 3: the windowed shard executor against the serial reference.
    let mut multi = 0u64;
    for r in shard_diff_range_gen(gen, start, count, opts.threads)
        .iter()
        .flatten()
    {
        if r.shards > 1 {
            multi += 1;
        }
        if r.divergent() {
            failures += 1;
            report_shard_divergence(r);
        }
    }

    // Self-test: the planted AC_VO/AC_BK parameter swap must be caught
    // by the priority-inversion oracle somewhere in the range — and the
    // catching scenario must shrink to a small repro that still fails.
    let swap = ScenarioGen::with_qos_aifsn_swap();
    let fires = |sc: &wn_check::Scenario| {
        run::check_scenario(sc)
            .iter()
            .any(|v| v.oracle == "edca-priority")
    };
    let mut caught = None;
    for seed in start..start + count {
        let sc = swap.scenario(seed);
        if fires(&sc) {
            caught = Some((seed, shrink(&sc, fires)));
            break;
        }
    }
    match caught {
        Some((seed, min)) => {
            if !fires(&min) {
                failures += 1;
                println!("aifsn-swap self-test: shrunk repro no longer fails");
            }
            println!(
                "aifsn-swap self-test: caught at seed {seed}, shrunk to {} stations: {}",
                station_count(&min),
                min.summary()
            );
        }
        None => {
            failures += 1;
            println!(
                "aifsn-swap self-test: planted priority inversion never caught in seeds {start}..{}",
                start + count
            );
        }
    }

    // The legacy-equivalence differential: with QoS off, the classic
    // corpus must still produce its recorded pre-QoS digest, byte for
    // byte.
    let legacy = fnv1a(range_digest(0, LEGACY_DIGEST_SEEDS, opts.threads).as_bytes());
    if legacy != LEGACY_DIGEST_FNV {
        failures += 1;
        println!(
            "legacy-equivalence: classic {LEGACY_DIGEST_SEEDS}-seed digest hashed to \
             {legacy:016x}, expected {LEGACY_DIGEST_FNV:016x} — the QoS machinery leaked \
             into the EDCA-off path"
        );
    }

    println!(
        "qos fuzz: {} seeds ({}..{}) x {{heap, wheel, direct, shard executor}} + aifsn-swap self-test + {}-seed legacy digest on {} workers in {:.2}s: {} failing ({} multi-shard)",
        count,
        start,
        start + count,
        LEGACY_DIGEST_SEEDS,
        opts.threads,
        t0.elapsed().as_secs_f64(),
        failures,
        multi
    );
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };

    if opts.dual {
        if run_dual(&opts) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if opts.cache_diff {
        if run_cache_diff(&opts) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if opts.shard_diff {
        if run_shard_diff(&opts) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if opts.grid_diff {
        if run_grid_diff(&opts) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if opts.qos {
        if run_qos(&opts) > 0 {
            std::process::exit(1);
        }
        return;
    }

    let t0 = std::time::Instant::now();
    let mut failures = 0u64;

    if let Some(seed) = opts.single {
        let r = check_seed_with(seed, opts.scheduler);
        if r.violations.is_empty() {
            println!("seed {seed}: ok  {} ({} events)", r.summary, r.events);
        } else {
            failures += 1;
            report_failure(seed, &r.summary, &r.violations, opts.shrink);
        }
    } else {
        let reports = check_range_with(opts.start, opts.count, opts.threads, opts.scheduler);
        let total = reports.len();
        for r in &reports {
            if !r.violations.is_empty() {
                failures += 1;
                report_failure(r.seed, &r.summary, &r.violations, opts.shrink);
            }
        }
        println!(
            "fuzzed {} seeds ({}..{}) on {} workers in {:.2}s: {} failing",
            total,
            opts.start,
            opts.start + opts.count,
            opts.threads,
            t0.elapsed().as_secs_f64(),
            failures
        );
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
