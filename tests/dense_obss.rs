//! DENSE-OBSS at full scale: the EDCA/A-MPDU apartment block of
//! overlapping BSSes on channels 1/6/11, checked from the point
//! observables rather than the experiment harness's own claims.
//!
//! The flagship sweep is release-sized (up to a 25-AP block); the
//! tier-1 debug suite skips this file and CI runs it in the release
//! job, like `city_dcf.rs` and `scale_dcf.rs`.

use wireless_networks::core::scenarios::{
    dense_obss_point, dense_obss_sweep, DenseObssPoint, DENSE_OBSS_MIX,
};

const VO: usize = 0;
const VI: usize = 1;
const BE: usize = 2;
const BK: usize = 3;

fn dump(p: &DenseObssPoint) {
    eprintln!(
        "DENSE-OBSS grid={}x{} aps={} coch={} p50={:?}us p99={:?}us jain={:.4} delivered={:.2}",
        p.grid.0,
        p.grid.1,
        p.aps,
        p.cochannel_max,
        p.ac_p50_us,
        p.ac_p99_us,
        p.jain_airtime_within_class,
        p.delivered_frac(),
    );
}

fn sweep_points() -> Vec<DenseObssPoint> {
    let (sweep, duration_ms) = dense_obss_sweep();
    sweep
        .iter()
        .map(|&(r, c)| dense_obss_point(r, c, duration_ms, 42, DENSE_OBSS_MIX))
        .collect()
}

/// Densifying the block grows every AC's median access delay: each
/// added co-channel AP shrinks the class's airtime share, so queueing
/// delay climbs across the whole priority ladder (a small multiplicative
/// slack absorbs quantile bucketing on the saturating AC_VO curve).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized sweep; run with --release (CI does)"
)]
fn per_ac_latency_grows_monotonically_with_density() {
    let points = sweep_points();
    for p in &points {
        dump(p);
    }
    for pair in points.windows(2) {
        for ac in [VO, VI, BE, BK] {
            assert!(
                pair[1].ac_p50_us[ac] as f64 >= pair[0].ac_p50_us[ac] as f64 * 0.95,
                "AC {ac} p50 fell from {} to {} µs as the block densified ({} -> {} APs)",
                pair[0].ac_p50_us[ac],
                pair[1].ac_p50_us[ac],
                pair[0].aps,
                pair[1].aps,
            );
        }
        // Best-effort, where priority gives no shelter and the queue
        // never drains to the horizon cap, must grow strictly.
        assert!(
            pair[1].ac_p50_us[BE] > pair[0].ac_p50_us[BE],
            "AC_BE p50 did not grow ({} -> {} µs) as the block densified",
            pair[0].ac_p50_us[BE],
            pair[1].ac_p50_us[BE],
        );
    }
}

/// EDCA's priority promise under OBSS contention: at every density
/// point (and on a data-heavy mix at the densest grid), voice tail
/// latency stays below best-effort tail latency.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized sweep; run with --release (CI does)"
)]
fn vo_tail_latency_stays_below_be_at_every_density() {
    let (sweep, duration_ms) = dense_obss_sweep();
    let mut points = sweep_points();
    let &(fr, fc) = sweep.last().expect("non-empty sweep");
    points.push(dense_obss_point(fr, fc, duration_ms, 42, [5, 10, 55, 30]));
    for p in &points {
        dump(p);
        assert!(
            p.ac_p99_us[VO] < p.ac_p99_us[BE],
            "AC_VO p99 {} µs not below AC_BE p99 {} µs at {} APs",
            p.ac_p99_us[VO],
            p.ac_p99_us[BE],
            p.aps,
        );
        // AC_VI sits between voice and best effort on the ladder.
        assert!(
            p.ac_p99_us[VO] < p.ac_p99_us[VI] || p.ac_p99_us[VI] < p.ac_p99_us[BE],
            "priority ladder flattened entirely at {} APs: {:?}",
            p.aps,
            p.ac_p99_us,
        );
    }
}

/// Symmetric APs inside one co-channel class split airtime fairly at
/// every density — Jain ≥ 0.9 within each class — and the block's
/// load regime brackets as designed: the sparsest grid delivers its
/// offered load, the densest is overloaded.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized sweep; run with --release (CI does)"
)]
fn airtime_stays_jain_fair_within_cochannel_classes() {
    let points = sweep_points();
    for p in &points {
        dump(p);
        assert!(
            p.jain_airtime_within_class >= 0.9,
            "within-class airtime Jain {:.4} < 0.9 at {} APs",
            p.jain_airtime_within_class,
            p.aps,
        );
        assert!(p.completed > 0, "block delivered nothing at {} APs", p.aps);
    }
    assert!(
        points[0].delivered_frac() >= 0.9,
        "sparsest block only delivered {:.2} of offered",
        points[0].delivered_frac(),
    );
    let densest = points.last().expect("non-empty sweep");
    assert!(
        densest.completed < densest.offered,
        "densest block unexpectedly served its whole backlog"
    );
}
