//! `wn-check` — a FoundationDB-style deterministic simulation fuzzer
//! for the wireless-networks workspace.
//!
//! The pieces:
//!
//! - [`scenario::ScenarioGen`] maps a seed to a concrete [`Scenario`]:
//!   a random topology, PHY rates, traffic load, queue capacities,
//!   fragmentation thresholds, mobility schedule and fault toggles
//!   across the WLAN, WPAN (Bluetooth / ZigBee) and WMAN worlds.
//! - [`run::run_scenario`] executes it through the existing engines
//!   and collects [`run::Artifacts`]: the typed trace plus end-state
//!   counters and config bounds.
//! - [`oracle::oracles`] is the pluggable invariant set checked
//!   against those artifacts — NAV respected, retry limits honoured,
//!   frame conservation, no duplicate delivery, legal state-machine
//!   transitions, DCF fairness, and per-world conservation ledgers.
//! - [`shrink::shrink`] minimises a failing scenario (halve stations,
//!   traffic and duration while the violation reproduces).
//!
//! Because every engine is seeded and single-threaded per run, a
//! failing seed replays byte-for-byte: the `fuzz` binary in `wn-bench`
//! prints `fuzz --seed N --shrink` as the one-line repro command.
//!
//! Every run can also execute on either scheduler back end
//! ([`run::run_scenario_with`]): the differential mode (`fuzz --dual`)
//! replays each seed through the binary heap and the timer wheel and
//! demands identical trace and metrics fingerprints, which is how the
//! wheel earns the right to be swapped in under big campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod run;
pub mod scenario;
pub mod shard;
pub mod shrink;

pub use oracle::{oracles, Invariant, Violation};
pub use run::{
    check_range, check_range_gen, check_range_grid, check_range_opts, check_range_with, check_seed,
    check_seed_gen, check_seed_grid, check_seed_opts, check_seed_with, range_digest,
    range_digest_with, run_oracles, run_scenario, run_scenario_grid, run_scenario_opts,
    run_scenario_with, SeedReport,
};
pub use scenario::{Scenario, ScenarioGen, ScenarioKind};
pub use shard::{
    component_seed, shard_diff_range, shard_diff_range_gen, shard_diff_scenario, shard_diff_seed,
    ShardDiffReport, SHARD_WORKER_COUNTS,
};
pub use shrink::{shrink, station_count};

/// The one-line command that replays and minimises a failing seed.
pub fn repro_command(seed: u64) -> String {
    format!("cargo run --release -p wn-bench --bin fuzz -- --seed {seed} --shrink")
}
