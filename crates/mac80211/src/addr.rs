//! IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address (unassigned).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// A deterministic locally-administered unicast address from an
    /// index — handy for simulations (`02:00:00:xx:xx:xx`).
    pub fn station(index: u32) -> MacAddr {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x00, b[1], b[2], b[3], 0x01])
    }

    /// A deterministic AP address namespace (`02:AP:…`).
    pub fn access_point(index: u32) -> MacAddr {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0xAB, b[1], b[2], b[3], 0x01])
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// `true` for group (multicast/broadcast) addresses — I/G bit set.
    pub fn is_group(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` for locally administered addresses — U/L bit set. §4.2:
    /// an IBSS BSSID is "the randomly generated, locally administered
    /// MAC address" of the starting STA.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Generates a locally-administered IBSS BSSID from a seed.
    pub fn random_ibss_bssid(seed: u64) -> MacAddr {
        let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let b = h.to_be_bytes();
        // Set U/L, clear I/G.
        MacAddr([(b[0] | 0x02) & !0x01, b[1], b[2], b[3], b[4], b[5]])
    }

    /// The raw bytes.
    pub fn bytes(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a MAC address from text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrParseError;

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for MacAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in out.iter_mut() {
            let p = parts.next().ok_or(AddrParseError)?;
            if p.len() != 2 {
                return Err(AddrParseError);
            }
            *slot = u8::from_str_radix(p, 16).map_err(|_| AddrParseError)?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError);
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = MacAddr([0x02, 0x1A, 0x2B, 0x3C, 0x4D, 0x5E]);
        assert_eq!(a.to_string(), "02:1a:2b:3c:4d:5e");
        assert_eq!("02:1a:2b:3c:4d:5e".parse::<MacAddr>().unwrap(), a);
        assert_eq!("02:1A:2B:3C:4D:5E".parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:1a:2b:3c:4d".parse::<MacAddr>().is_err());
        assert!("02:1a:2b:3c:4d:5e:6f".parse::<MacAddr>().is_err());
        assert!("02:1a:2b:3c:4d:zz".parse::<MacAddr>().is_err());
        assert!("021a:2b:3c:4d:5e".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_group());
        assert!(!MacAddr::station(1).is_broadcast());
    }

    #[test]
    fn station_addresses_unique_and_unicast() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let a = MacAddr::station(i);
            assert!(!a.is_group());
            assert!(a.is_locally_administered());
            assert!(seen.insert(a));
        }
    }

    #[test]
    fn ap_and_station_namespaces_disjoint() {
        for i in 0..100 {
            assert_ne!(MacAddr::station(i), MacAddr::access_point(i));
        }
    }

    #[test]
    fn ibss_bssid_is_local_unicast() {
        for seed in 0..50u64 {
            let b = MacAddr::random_ibss_bssid(seed);
            assert!(b.is_locally_administered(), "{b}");
            assert!(!b.is_group(), "{b}");
        }
        assert_ne!(MacAddr::random_ibss_bssid(1), MacAddr::random_ibss_bssid(2));
    }
}
