//! Virtual time types.
//!
//! Simulation time is an absolute instant ([`SimTime`]) measured in
//! nanoseconds since the start of the run; [`SimDuration`] is the
//! corresponding span type. Both are thin wrappers over `u64` so they are
//! `Copy`, totally ordered, and hashable, and all arithmetic is explicit
//! and saturating-free (overflow is a programmer error and panics in
//! debug builds just like ordinary integer arithmetic).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since run start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "duration_since: {earlier:?} is after {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The time to serialize `bits` onto a link of `bits_per_sec`.
    ///
    /// This is the workhorse used by every MAC model to turn a frame
    /// length and a PHY rate into airtime.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero or not finite.
    pub fn for_bits(bits: u64, bits_per_sec: f64) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec > 0.0,
            "invalid rate {bits_per_sec}"
        );
        SimDuration::from_secs_f64(bits as f64 / bits_per_sec)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Checked addition of two spans.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Pretty-prints a nanosecond count with an adaptive unit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_string()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_works() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(2));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversal() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        let _ = a.duration_since(b);
    }

    #[test]
    fn for_bits_matches_hand_calculation() {
        // 1500 bytes at 54 Mbps = 12000 bits / 54e6 = 222.22.. us.
        let d = SimDuration::for_bits(12_000, 54e6);
        let us = d.as_micros_f64();
        assert!((us - 222.222).abs() < 0.01, "got {us}");
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let d = SimDuration::from_secs_f64(0.001_234_567);
        assert!((d.as_secs_f64() - 0.001_234_567).abs() < 1e-12);
    }

    #[test]
    fn display_picks_adaptive_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(9).to_string(), "9.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn scalar_ops() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(3 * d, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
    }
}
