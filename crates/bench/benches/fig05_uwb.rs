//! FIG-1.5 — regenerates the UWB PSD/rate data; times the spectral and
//! BER models.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_5_uwb;
use wn_phy::units::Db;
use wn_wpan::uwb::{ppm_ber, rate_at_distance, transfer_time_s};

fn main() {
    let (fig, report) = fig_1_5_uwb();
    print_figure(&fig);
    print_report(&report);

    bench("fig05/rate_and_ber_sweep", || {
        let mut acc = 0.0;
        for i in 0..200 {
            let d = i as f64 * 0.06;
            if let Some(r) = rate_at_distance(d) {
                acc += r.bps();
            }
            acc += ppm_ber(Db(i as f64 * 0.2));
            if let Some(t) = transfer_time_s(d, 1_000_000) {
                acc += t;
            }
        }
        black_box(acc)
    });
}
