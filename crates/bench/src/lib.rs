//! Shared helpers for the figure/table benches.
//!
//! Every bench target in this crate regenerates one figure or table of
//! the source text: it prints the series/report (the reproduction) and
//! then times the underlying simulation kernel with a std-only harness
//! (no external bench framework, so the workspace builds offline).

use std::time::{Duration, Instant};

use wn_core::experiment::ExperimentReport;
use wn_sim::stats::Figure;

/// Prints a regenerated figure as an aligned table.
pub fn print_figure(fig: &Figure) {
    println!("\n{}", fig.to_table());
}

/// Prints an experiment report and asserts it reproduced the paper.
pub fn print_report(report: &ExperimentReport) {
    println!("{}", report.to_markdown());
    assert!(
        report.passed(),
        "experiment {} did not reproduce",
        report.id
    );
}

/// Timing summary for one benched kernel.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Arithmetic mean over all timed iterations.
    pub mean: Duration,
}

/// Times `f` with one warm-up call plus enough timed iterations to fill
/// roughly [`target`] of wall clock (at least three), and prints a
/// one-line summary. Returns the stats so callers can post-process.
pub fn bench_kernel<R>(name: &str, target: Duration, mut f: impl FnMut() -> R) -> BenchStats {
    // Warm-up; also gives us a cost estimate to size the iteration count.
    let warm = Instant::now();
    std::hint::black_box(f());
    let per_iter = warm.elapsed().max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(3, 1000) as u32;

    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let dt = t.elapsed();
        min = min.min(dt);
        total += dt;
    }
    let stats = BenchStats {
        iters,
        min,
        mean: total / iters,
    };
    println!(
        "bench {:<40} iters {:>5}  min {:>12.3?}  mean {:>12.3?}",
        name, stats.iters, stats.min, stats.mean
    );
    stats
}

/// [`bench_kernel`] with the default 2-second measurement budget the old
/// criterion configuration used.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> BenchStats {
    bench_kernel(name, Duration::from_secs(2), f)
}
