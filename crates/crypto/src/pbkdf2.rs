//! PBKDF2-HMAC-SHA1 (RFC 2898), validated against RFC 6070 vectors.
//!
//! WPA and WPA2 personal mode derive their 256-bit pairwise master key
//! as `PBKDF2(passphrase, ssid, 4096 iterations, 32 bytes)` — this is
//! the "256-bit keys used by WPA" of §5.2 and the reason offline
//! dictionary attacks against weak passphrases work (simulated in
//! `wn-security`).

use crate::hmac::hmac_sha1;

/// Derives `dk_len` bytes from a password and salt.
///
/// # Panics
///
/// Panics if `iterations` is zero or `dk_len` is zero.
pub fn pbkdf2_hmac_sha1(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "iterations must be positive");
    assert!(dk_len > 0, "dk_len must be positive");
    let mut out = Vec::with_capacity(dk_len);
    let blocks = dk_len.div_ceil(20);
    for block_index in 1..=blocks as u32 {
        let mut salted = salt.to_vec();
        salted.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha1(password, &salted);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha1(password, &u);
            for (ti, ui) in t.iter_mut().zip(u.iter()) {
                *ti ^= ui;
            }
        }
        out.extend_from_slice(&t);
    }
    out.truncate(dk_len);
    out
}

/// Derives the WPA/WPA2 pairwise master key from a passphrase and SSID.
///
/// This is exactly the IEEE 802.11i PSK mapping: 4096 iterations of
/// PBKDF2-HMAC-SHA1 producing 32 bytes.
pub fn wpa_psk(passphrase: &str, ssid: &str) -> [u8; 32] {
    let dk = pbkdf2_hmac_sha1(passphrase.as_bytes(), ssid.as_bytes(), 4096, 32);
    dk.try_into().expect("requested 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc6070_one_iteration() {
        let dk = pbkdf2_hmac_sha1(b"password", b"salt", 1, 20);
        assert_eq!(hex(&dk), "0c60c80f961f0e71f3a9b524af6012062fe037a6");
    }

    #[test]
    fn rfc6070_two_iterations() {
        let dk = pbkdf2_hmac_sha1(b"password", b"salt", 2, 20);
        assert_eq!(hex(&dk), "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957");
    }

    #[test]
    fn rfc6070_4096_iterations() {
        let dk = pbkdf2_hmac_sha1(b"password", b"salt", 4096, 20);
        assert_eq!(hex(&dk), "4b007901b765489abead49d926f721d065a429c1");
    }

    #[test]
    fn rfc6070_multi_block_output() {
        let dk = pbkdf2_hmac_sha1(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            25,
        );
        assert_eq!(
            hex(&dk),
            "3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038"
        );
    }

    #[test]
    fn wpa_psk_ieee_vector() {
        // IEEE 802.11i Annex H PSK test vector.
        let psk = wpa_psk("password", "IEEE");
        assert_eq!(
            hex(&psk),
            "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e"
        );
    }

    #[test]
    fn different_ssid_different_psk() {
        // The SSID acts as a salt: same passphrase, different network,
        // different key — this is why rainbow tables must be per-SSID.
        let a = wpa_psk("correct horse battery", "HomeNet");
        let b = wpa_psk("correct horse battery", "CoffeeShop");
        assert_ne!(a, b);
    }

    #[test]
    fn truncation_is_prefix() {
        let long = pbkdf2_hmac_sha1(b"p", b"s", 3, 40);
        let short = pbkdf2_hmac_sha1(b"p", b"s", 3, 16);
        assert_eq!(&long[..16], &short[..]);
    }
}
