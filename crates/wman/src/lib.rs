//! `wn-wman` — WiMAX / IEEE 802.16 metropolitan-area networks (§2.3).
//!
//! "WiMAX is a communications technology that supports point to
//! multipoint architecture … operates on two frequency bands … from
//! 2 GHz to 11 GHz and from 10 GHz to 66 GHz, and can transfer around
//! 70 Mbps over a distance of 50 km to thousands of users from a single
//! base station."
//!
//! - [`link`] — per-subscriber adaptive modulation from the link
//!   budget, with the NLOS (2–11 GHz) vs LOS (10–66 GHz) split.
//! - [`scheduler`] — the frame-based point-to-multipoint MAC with
//!   802.16 service-flow classes (UGS / rtPS / nrtPS / BE).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod scheduler;

pub use link::{WimaxBand, WimaxLink};
pub use scheduler::{BaseStation, ServiceClass, SubscriberId};
