//! The Fig. 1.1 classification of wireless networks.
//!
//! "Wireless networks can be classified into four specific groups
//! according to the area of application and the signal range: WPAN,
//! WLANs, WMAN, and WWANs. … In addition, wireless networks can be
//! also divided into two broad segments: short-range and long-range."

use std::fmt;

/// The four classes, ordered by reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkClass {
    /// Wireless personal-area network (~10 m).
    Wpan,
    /// Wireless local-area network (~100 m).
    Wlan,
    /// Wireless metropolitan-area network (~50 km).
    Wman,
    /// Wireless wide-area network (beyond 50 km).
    Wwan,
}

impl NetworkClass {
    /// All classes in reach order.
    pub const ALL: [NetworkClass; 4] = [
        NetworkClass::Wpan,
        NetworkClass::Wlan,
        NetworkClass::Wman,
        NetworkClass::Wwan,
    ];

    /// Expanded name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkClass::Wpan => "Wireless Personal-Area Network",
            NetworkClass::Wlan => "Wireless Local-Area Network",
            NetworkClass::Wman => "Wireless Metropolitan-Area Network",
            NetworkClass::Wwan => "Wireless Wide-Area Network",
        }
    }

    /// Abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            NetworkClass::Wpan => "WPAN",
            NetworkClass::Wlan => "WLAN",
            NetworkClass::Wman => "WMAN",
            NetworkClass::Wwan => "WWAN",
        }
    }

    /// Representative reach in metres (the classification axis of
    /// Fig. 1.1).
    pub fn nominal_reach_m(self) -> f64 {
        match self {
            NetworkClass::Wpan => 10.0,
            NetworkClass::Wlan => 100.0,
            NetworkClass::Wman => 50_000.0,
            NetworkClass::Wwan => 100_000.0,
        }
    }

    /// "Short-range wireless pertains to networks that are confined to
    /// a limited area" — WPAN + WLAN.
    pub fn is_short_range(self) -> bool {
        matches!(self, NetworkClass::Wpan | NetworkClass::Wlan)
    }

    /// "In long-range networks, connectivity is typically provided by
    /// companies that sell the wireless connectivity as a service."
    pub fn is_service_provided(self) -> bool {
        !self.is_short_range()
    }

    /// Classifies a link distance into the owning class.
    pub fn for_distance_m(d: f64) -> NetworkClass {
        if d <= 10.0 {
            NetworkClass::Wpan
        } else if d <= 250.0 {
            NetworkClass::Wlan
        } else if d <= 50_000.0 {
            NetworkClass::Wman
        } else {
            NetworkClass::Wwan
        }
    }
}

impl fmt::Display for NetworkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_ordering() {
        let mut prev = 0.0;
        for c in NetworkClass::ALL {
            assert!(c.nominal_reach_m() > prev);
            prev = c.nominal_reach_m();
        }
    }

    #[test]
    fn short_vs_long_segmentation() {
        assert!(NetworkClass::Wpan.is_short_range());
        assert!(NetworkClass::Wlan.is_short_range());
        assert!(!NetworkClass::Wman.is_short_range());
        assert!(!NetworkClass::Wwan.is_short_range());
        assert!(NetworkClass::Wman.is_service_provided());
    }

    #[test]
    fn distance_classifier() {
        assert_eq!(NetworkClass::for_distance_m(1.0), NetworkClass::Wpan);
        assert_eq!(NetworkClass::for_distance_m(50.0), NetworkClass::Wlan);
        assert_eq!(NetworkClass::for_distance_m(5_000.0), NetworkClass::Wman);
        assert_eq!(NetworkClass::for_distance_m(80_000.0), NetworkClass::Wwan);
    }

    #[test]
    fn names() {
        assert_eq!(NetworkClass::Wpan.abbrev(), "WPAN");
        assert!(NetworkClass::Wlan.name().contains("Local"));
        assert_eq!(NetworkClass::Wman.to_string(), "WMAN");
    }
}
