//! Bluetooth piconets and scatternets (§2.1, Fig. 1.2).
//!
//! "A Bluetooth network is also called a piconet, and is composed of up
//! to 8 active devices in a master-slave relationship. … two devices
//! within the coverage range of each other can share up to 720 Kbps."
//!
//! The model is a slot-true TDD simulation: 625 µs slots, the master
//! polls slaves in round-robin, baseband packets occupy 1/3/5 slots
//! (DH1/DH3/DH5 payloads 27/183/339 bytes). The asymmetric DH5/DH1
//! schedule yields the classic ~723 kbps one-way ceiling the text
//! quotes as 720 kbps. Scatternets (Fig. 1.2) arise from *bridge*
//! devices that alternate residence between two piconets and forward
//! queued traffic — "a device in a scatternet could be a slave in
//! several piconets, but master in only one of them."

use std::collections::VecDeque;

use wn_phy::geom::Point;
use wn_sim::metrics::{MetricsRegistry, MetricsSnapshot};
use wn_sim::trace::{Level, Trace, TraceEvent};
use wn_sim::{Scheduler, SimDuration, SimTime, Simulation, World};

/// One Bluetooth TDD slot: 625 µs.
pub const SLOT: SimDuration = SimDuration::from_micros(625);

/// Device power classes (§2.1): range ~100 m / 10 m / 1 m.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceClass {
    /// 100 mW, ~100 m range.
    Class1,
    /// 2.5 mW, ~10 m range — "the most commonly used".
    Class2,
    /// 1 mW, ~1 m range.
    Class3,
}

impl DeviceClass {
    /// Nominal radio range in metres.
    pub fn range_m(self) -> f64 {
        match self {
            DeviceClass::Class1 => 100.0,
            DeviceClass::Class2 => 10.0,
            DeviceClass::Class3 => 1.0,
        }
    }
}

/// Baseband ACL packet types used by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketType {
    /// 1 slot, 27-byte payload.
    Dh1,
    /// 3 slots, 183-byte payload.
    Dh3,
    /// 5 slots, 339-byte payload.
    Dh5,
}

impl PacketType {
    /// Slots occupied on the air.
    pub fn slots(self) -> u64 {
        match self {
            PacketType::Dh1 => 1,
            PacketType::Dh3 => 3,
            PacketType::Dh5 => 5,
        }
    }

    /// Payload bytes carried.
    pub fn payload(self) -> usize {
        match self {
            PacketType::Dh1 => 27,
            PacketType::Dh3 => 183,
            PacketType::Dh5 => 339,
        }
    }

    /// The largest packet whose payload fits `pending` bytes usefully.
    pub fn for_backlog(pending: usize) -> PacketType {
        if pending > PacketType::Dh3.payload() {
            PacketType::Dh5
        } else if pending > PacketType::Dh1.payload() {
            PacketType::Dh3
        } else {
            PacketType::Dh1
        }
    }
}

/// A device id within a [`BtNetwork`].
pub type DeviceId = usize;

/// A piconet id.
pub type PiconetId = usize;

/// Errors building a Bluetooth network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BtError {
    /// A piconet already has 7 active slaves (8 devices total, §2.1).
    PiconetFull(PiconetId),
    /// A device may be master of at most one piconet.
    AlreadyMaster(DeviceId),
    /// The slave is outside the master's radio range.
    OutOfRange {
        /// Master device.
        master: DeviceId,
        /// Slave device.
        slave: DeviceId,
    },
    /// Unknown device or piconet index.
    BadIndex,
}

impl std::fmt::Display for BtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BtError::PiconetFull(p) => write!(f, "piconet {p} already has 7 active slaves"),
            BtError::AlreadyMaster(d) => write!(f, "device {d} is already a master"),
            BtError::OutOfRange { master, slave } => {
                write!(f, "slave {slave} is out of range of master {master}")
            }
            BtError::BadIndex => write!(f, "unknown device or piconet"),
        }
    }
}

impl std::error::Error for BtError {}

struct Device {
    pos: Point,
    class: DeviceClass,
    /// Piconets this device belongs to (bridge devices have several).
    memberships: Vec<PiconetId>,
    /// Which membership the device is currently residing in.
    resident: usize,
    /// Per-destination outbound byte queues `(dest, remaining bytes)`.
    queues: VecDeque<(DeviceId, usize)>,
    delivered_bytes: u64,
    sent_bytes: u64,
}

struct Piconet {
    master: DeviceId,
    slaves: Vec<DeviceId>,
    /// Parked members: addressed, synchronised, but not polled and not
    /// counted against the 7-active-slave limit.
    parked: Vec<DeviceId>,
    next_poll: usize,
}

/// A Bluetooth network world: piconets, bridges, slot-true scheduling.
pub struct BtNetwork {
    devices: Vec<Device>,
    piconets: Vec<Piconet>,
    /// Slots a bridge stays in one piconet before hopping to the next.
    pub bridge_dwell_slots: u64,
    slots_elapsed: u64,
    /// Typed event trace (joins at Info, polls at Debug).
    pub trace: Trace,
    polls: u64,
}

/// Events driving the Bluetooth world.
pub enum BtEvent {
    /// The master of `piconet` runs its next polling exchange.
    Poll {
        /// The piconet whose master polls.
        piconet: PiconetId,
    },
    /// Bridges reconsider their residence.
    BridgeHop,
}

impl BtNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        BtNetwork {
            devices: Vec::new(),
            piconets: Vec::new(),
            bridge_dwell_slots: 16,
            slots_elapsed: 0,
            trace: Trace::new(4096),
            polls: 0,
        }
    }

    /// Adds a device.
    pub fn add_device(&mut self, pos: Point, class: DeviceClass) -> DeviceId {
        self.devices.push(Device {
            pos,
            class,
            memberships: Vec::new(),
            resident: 0,
            queues: VecDeque::new(),
            delivered_bytes: 0,
            sent_bytes: 0,
        });
        self.devices.len() - 1
    }

    /// Forms a piconet with `master`; "The first Bluetooth device in
    /// the piconet is the master."
    pub fn form_piconet(&mut self, master: DeviceId) -> Result<PiconetId, BtError> {
        if master >= self.devices.len() {
            return Err(BtError::BadIndex);
        }
        if self.piconets.iter().any(|p| p.master == master) {
            return Err(BtError::AlreadyMaster(master));
        }
        let id = self.piconets.len();
        self.piconets.push(Piconet {
            master,
            slaves: Vec::new(),
            parked: Vec::new(),
            next_poll: 0,
        });
        self.devices[master].memberships.push(id);
        Ok(id)
    }

    /// Joins `slave` to `piconet` (≤7 active slaves, in range).
    pub fn join(&mut self, piconet: PiconetId, slave: DeviceId) -> Result<(), BtError> {
        let Some(p) = self.piconets.get(piconet) else {
            return Err(BtError::BadIndex);
        };
        if slave >= self.devices.len() {
            return Err(BtError::BadIndex);
        }
        if p.slaves.len() >= 7 {
            return Err(BtError::PiconetFull(piconet));
        }
        let master = p.master;
        let dist = self.devices[master]
            .pos
            .distance_to(self.devices[slave].pos);
        let range = self.devices[master]
            .class
            .range_m()
            .min(self.devices[slave].class.range_m());
        if dist > range {
            return Err(BtError::OutOfRange { master, slave });
        }
        self.piconets[piconet].slaves.push(slave);
        self.devices[slave].memberships.push(piconet);
        self.trace.event(
            SimTime::ZERO,
            Level::Info,
            "bt",
            TraceEvent::Join {
                station: slave as u32,
                parent: master as u32,
            },
        );
        Ok(())
    }

    /// Parks an active slave: it stays a member (keeps its clock
    /// offset) but is no longer polled and frees an active slot —
    /// how real piconets serve more than 7 devices.
    pub fn park(&mut self, piconet: PiconetId, slave: DeviceId) -> Result<(), BtError> {
        let Some(p) = self.piconets.get_mut(piconet) else {
            return Err(BtError::BadIndex);
        };
        let Some(pos) = p.slaves.iter().position(|&s| s == slave) else {
            return Err(BtError::BadIndex);
        };
        p.slaves.remove(pos);
        p.parked.push(slave);
        Ok(())
    }

    /// Unparks a parked member back into the active set (≤7 active).
    pub fn unpark(&mut self, piconet: PiconetId, slave: DeviceId) -> Result<(), BtError> {
        let Some(p) = self.piconets.get_mut(piconet) else {
            return Err(BtError::BadIndex);
        };
        let Some(pos) = p.parked.iter().position(|&s| s == slave) else {
            return Err(BtError::BadIndex);
        };
        if p.slaves.len() >= 7 {
            return Err(BtError::PiconetFull(piconet));
        }
        p.parked.remove(pos);
        p.slaves.push(slave);
        Ok(())
    }

    /// Number of active slaves in a piconet.
    pub fn active_slaves(&self, piconet: PiconetId) -> usize {
        self.piconets.get(piconet).map_or(0, |p| p.slaves.len())
    }

    /// Number of parked members in a piconet.
    pub fn parked_members(&self, piconet: PiconetId) -> usize {
        self.piconets.get(piconet).map_or(0, |p| p.parked.len())
    }

    /// Queues an application transfer of `bytes` from `src` to `dst`.
    pub fn send(&mut self, src: DeviceId, dst: DeviceId, bytes: usize) {
        self.devices[src].queues.push_back((dst, bytes));
    }

    /// Bytes delivered to `dev` so far.
    pub fn delivered_bytes(&self, dev: DeviceId) -> u64 {
        self.devices[dev].delivered_bytes
    }

    /// Bytes a device has put on the air.
    pub fn sent_bytes(&self, dev: DeviceId) -> u64 {
        self.devices[dev].sent_bytes
    }

    /// Application bytes still waiting in outbound queues across all
    /// devices (including transfers parked without a route). Closes
    /// the byte-conservation ledger the fuzzer's oracle checks:
    /// `injected == delivered + pending`.
    pub fn pending_bytes(&self) -> u64 {
        self.devices
            .iter()
            .flat_map(|d| d.queues.iter())
            .map(|&(_, remaining)| remaining as u64)
            .sum()
    }

    /// Exports per-device byte counters and world-level slot accounting
    /// into a named snapshot at time `now`.
    pub fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for (i, d) in self.devices.iter().enumerate() {
            let id = Some(i as u32);
            reg.counter("bt", "sent_bytes", id).add(d.sent_bytes);
            reg.counter("bt", "delivered_bytes", id)
                .add(d.delivered_bytes);
        }
        reg.counter("bt", "polls", None).add(self.polls);
        reg.counter("bt", "slots_elapsed", None)
            .add(self.slots_elapsed);
        reg.snapshot(now)
    }

    /// Whether `dev` currently resides in `piconet` (bridges rotate).
    fn is_resident(&self, dev: DeviceId, piconet: PiconetId) -> bool {
        let d = &self.devices[dev];
        match d.memberships.len() {
            0 => false,
            1 => d.memberships[0] == piconet,
            _ => d.memberships[d.resident % d.memberships.len()] == piconet,
        }
    }

    /// Next hop from `from` toward `to`, BFS over piconet co-membership.
    fn next_hop(&self, from: DeviceId, to: DeviceId) -> Option<DeviceId> {
        if from == to {
            return None;
        }
        // Adjacency: master ↔ each slave of each piconet.
        let neighbours = |d: DeviceId| -> Vec<DeviceId> {
            let mut out = Vec::new();
            for &pid in &self.devices[d].memberships {
                let p = &self.piconets[pid];
                if p.master == d {
                    out.extend(p.slaves.iter().copied());
                } else {
                    out.push(p.master);
                }
            }
            out
        };
        let mut prev: Vec<Option<DeviceId>> = vec![None; self.devices.len()];
        let mut visited = vec![false; self.devices.len()];
        let mut q = VecDeque::from([from]);
        visited[from] = true;
        while let Some(d) = q.pop_front() {
            if d == to {
                // Walk back to the first hop.
                let mut cur = to;
                while let Some(p) = prev[cur] {
                    if p == from {
                        return Some(cur);
                    }
                    cur = p;
                }
                return Some(cur);
            }
            for n in neighbours(d) {
                if !visited[n] {
                    visited[n] = true;
                    prev[n] = Some(d);
                    q.push_back(n);
                }
            }
        }
        None
    }

    /// Moves up to `pkt.payload()` bytes of `dev`'s head queue one hop;
    /// returns the slots consumed, or `None` when nothing to send via
    /// this link (`peer` must be the next hop of the head transfer).
    fn transfer_one(&mut self, dev: DeviceId, peer: DeviceId) -> Option<u64> {
        // Find the first queued transfer whose next hop is `peer`.
        let qlen = self.devices[dev].queues.len();
        for qi in 0..qlen {
            let (dst, remaining) = self.devices[dev].queues[qi];
            // Unroutable entries (e.g. toward a parked or detached
            // device) must not block the rest of the queue; they stay
            // queued awaiting a route.
            let Some(hop) = self.next_hop(dev, dst) else {
                continue;
            };
            if hop != peer {
                continue;
            }
            let pkt = PacketType::for_backlog(remaining);
            let moved = remaining.min(pkt.payload());
            if moved == remaining {
                self.devices[dev].queues.remove(qi);
            } else {
                self.devices[dev].queues[qi].1 = remaining - moved;
            }
            self.devices[dev].sent_bytes += moved as u64;
            if peer == dst {
                self.devices[dst].delivered_bytes += moved as u64;
            } else {
                // Forwarding: requeue at the intermediate device.
                self.devices[peer].queues.push_back((dst, moved));
            }
            return Some(pkt.slots());
        }
        None
    }
}

impl Default for BtNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl World for BtNetwork {
    type Event = BtEvent;

    fn handle(&mut self, now: SimTime, ev: BtEvent, sched: &mut Scheduler<BtEvent>) {
        match ev {
            BtEvent::Poll { piconet } => {
                let (master, n_slaves) = {
                    let p = &self.piconets[piconet];
                    (p.master, p.slaves.len())
                };
                if n_slaves == 0 || !self.is_resident(master, piconet) {
                    sched.schedule_in(SLOT * 2, BtEvent::Poll { piconet });
                    return;
                }
                // Round-robin to the next *resident* slave.
                let mut chosen = None;
                for k in 0..n_slaves {
                    let idx = (self.piconets[piconet].next_poll + k) % n_slaves;
                    let s = self.piconets[piconet].slaves[idx];
                    if self.is_resident(s, piconet) {
                        chosen = Some((idx, s));
                        break;
                    }
                }
                let Some((idx, slave)) = chosen else {
                    sched.schedule_in(SLOT * 2, BtEvent::Poll { piconet });
                    return;
                };
                self.piconets[piconet].next_poll = (idx + 1) % n_slaves;
                // Master→slave then slave→master; idle exchanges still
                // burn the 2-slot POLL/NULL pair (TDD discipline).
                let down = self.transfer_one(master, slave).unwrap_or(1);
                let up = self.transfer_one(slave, master).unwrap_or(1);
                let slots = down + up;
                self.slots_elapsed += slots;
                self.polls += 1;
                self.trace.event(
                    now,
                    Level::Debug,
                    "bt",
                    TraceEvent::Poll {
                        station: master as u32,
                        peer: slave as u32,
                        slots: slots as u32,
                    },
                );
                sched.schedule_in(SLOT * slots, BtEvent::Poll { piconet });
            }
            BtEvent::BridgeHop => {
                for d in &mut self.devices {
                    if d.memberships.len() > 1 {
                        d.resident = d.resident.wrapping_add(1);
                    }
                }
                sched.schedule_in(SLOT * self.bridge_dwell_slots, BtEvent::BridgeHop);
            }
        }
    }
}

/// Boots the Bluetooth world: one poll loop per piconet + bridge hops.
pub fn boot(sim: &mut Simulation<BtNetwork>) {
    let n = sim.world().piconets.len();
    for p in 0..n {
        sim.scheduler_mut()
            .schedule_at(SimTime::ZERO, BtEvent::Poll { piconet: p });
    }
    sim.scheduler_mut()
        .schedule_at(SimTime::ZERO, BtEvent::BridgeHop);
}

/// Builds the Fig. 1.2 scatternet: two piconets sharing one bridge
/// device (slave in A, master of B is *not* the bridge — the bridge is
/// "a slave in several piconets").
pub fn fig_1_2_scatternet(
    slaves_a: usize,
    slaves_b: usize,
) -> (BtNetwork, PiconetId, PiconetId, DeviceId) {
    let mut net = BtNetwork::new();
    let master_a = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
    let master_b = net.add_device(Point::new(8.0, 0.0), DeviceClass::Class2);
    let pa = net.form_piconet(master_a).expect("fresh master");
    let pb = net.form_piconet(master_b).expect("fresh master");
    let bridge = net.add_device(Point::new(4.0, 0.0), DeviceClass::Class2);
    net.join(pa, bridge).expect("in range");
    net.join(pb, bridge).expect("in range");
    for i in 0..slaves_a.min(6) {
        let d = net.add_device(Point::new(-2.0, 1.0 + i as f64), DeviceClass::Class2);
        net.join(pa, d).expect("in range");
    }
    for i in 0..slaves_b.min(6) {
        let d = net.add_device(Point::new(10.0, 1.0 + i as f64), DeviceClass::Class2);
        net.join(pb, d).expect("in range");
    }
    (net, pa, pb, bridge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_type_selection() {
        assert_eq!(PacketType::for_backlog(10), PacketType::Dh1);
        assert_eq!(PacketType::for_backlog(27), PacketType::Dh1);
        assert_eq!(PacketType::for_backlog(28), PacketType::Dh3);
        assert_eq!(PacketType::for_backlog(183), PacketType::Dh3);
        assert_eq!(PacketType::for_backlog(184), PacketType::Dh5);
        assert_eq!(PacketType::for_backlog(100_000), PacketType::Dh5);
    }

    #[test]
    fn piconet_caps_at_eight_devices() {
        // "up to 8 active devices": 1 master + 7 slaves.
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        for i in 0..7 {
            let d = net.add_device(Point::new(1.0 + i as f64 * 0.1, 0.0), DeviceClass::Class2);
            net.join(p, d).unwrap();
        }
        let extra = net.add_device(Point::new(2.0, 0.0), DeviceClass::Class2);
        assert_eq!(net.join(p, extra), Err(BtError::PiconetFull(p)));
    }

    #[test]
    fn master_of_only_one_piconet() {
        // "master in only one of them".
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        net.form_piconet(m).unwrap();
        assert_eq!(net.form_piconet(m), Err(BtError::AlreadyMaster(m)));
    }

    #[test]
    fn class_ranges_enforced() {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let far = net.add_device(Point::new(50.0, 0.0), DeviceClass::Class2);
        assert!(matches!(net.join(p, far), Err(BtError::OutOfRange { .. })));
        // A class-1 pair at 50 m works.
        let m1 = net.add_device(Point::new(100.0, 0.0), DeviceClass::Class1);
        let p1 = net.form_piconet(m1).unwrap();
        let far1 = net.add_device(Point::new(150.0, 0.0), DeviceClass::Class1);
        assert!(net.join(p1, far1).is_ok());
        // Class 3 reaches only ~1 m.
        assert_eq!(DeviceClass::Class3.range_m(), 1.0);
    }

    #[test]
    fn park_frees_an_active_slot_and_stops_polling() {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let mut slaves = Vec::new();
        for i in 0..7 {
            let s = net.add_device(Point::new(1.0 + i as f64 * 0.1, 0.0), DeviceClass::Class2);
            net.join(p, s).unwrap();
            slaves.push(s);
        }
        // Full. Parking one admits an eighth member.
        let extra = net.add_device(Point::new(2.0, 0.0), DeviceClass::Class2);
        assert_eq!(net.join(p, extra), Err(BtError::PiconetFull(p)));
        net.park(p, slaves[0]).unwrap();
        assert_eq!(net.active_slaves(p), 6);
        assert_eq!(net.parked_members(p), 1);
        net.join(p, extra).unwrap();
        assert_eq!(net.active_slaves(p), 7);

        // Traffic to the parked slave goes nowhere; the new member
        // receives.
        net.send(m, slaves[0], 10_000);
        net.send(m, extra, 10_000);
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            sim.world().delivered_bytes(slaves[0]),
            0,
            "parked: not polled"
        );
        assert_eq!(sim.world().delivered_bytes(extra), 10_000);
    }

    #[test]
    fn unpark_restores_service() {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let s = net.add_device(Point::new(1.0, 0.0), DeviceClass::Class2);
        net.join(p, s).unwrap();
        net.park(p, s).unwrap();
        net.unpark(p, s).unwrap();
        net.send(m, s, 5_000);
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.world().delivered_bytes(s), 5_000);
    }

    #[test]
    fn unpark_respects_active_limit() {
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let first = net.add_device(Point::new(0.5, 0.0), DeviceClass::Class2);
        net.join(p, first).unwrap();
        net.park(p, first).unwrap();
        for i in 0..7 {
            let s = net.add_device(Point::new(1.0 + i as f64 * 0.1, 0.0), DeviceClass::Class2);
            net.join(p, s).unwrap();
        }
        assert_eq!(net.unpark(p, first), Err(BtError::PiconetFull(p)));
        assert_eq!(net.park(p, 999), Err(BtError::BadIndex));
    }

    #[test]
    fn single_pair_throughput_near_720_kbps() {
        // "can share up to 720 Kbps of capacity".
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let s = net.add_device(Point::new(2.0, 0.0), DeviceClass::Class2);
        net.join(p, s).unwrap();
        net.send(m, s, 10_000_000); // Saturate downlink.
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        let kbps = sim.world().delivered_bytes(s) as f64 * 8.0 / 10.0 / 1e3;
        assert!(
            (650.0..760.0).contains(&kbps),
            "single-pair Bluetooth throughput {kbps} kbps, expected ≈723"
        );
    }

    #[test]
    fn capacity_shared_among_slaves() {
        // With 7 saturated slaves the per-slave share drops ~7×.
        let mut net = BtNetwork::new();
        let m = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(m).unwrap();
        let mut slaves = Vec::new();
        for i in 0..7 {
            let s = net.add_device(Point::new(1.0, i as f64 * 0.5), DeviceClass::Class2);
            net.join(p, s).unwrap();
            net.send(m, s, 10_000_000);
            slaves.push(s);
        }
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        let per: Vec<f64> = slaves
            .iter()
            .map(|&s| sim.world().delivered_bytes(s) as f64 * 8.0 / 10.0 / 1e3)
            .collect();
        let total: f64 = per.iter().sum();
        assert!((600.0..760.0).contains(&total), "aggregate {total} kbps");
        for (i, &r) in per.iter().enumerate() {
            assert!(
                (total / 7.0 - r).abs() < total * 0.1,
                "slave {i} got {r} of {total} — round-robin should be fair: {per:?}"
            );
        }
    }

    #[test]
    fn scatternet_forwards_across_piconets() {
        // Fig. 1.2: slave in A sends to slave in B via the bridge.
        let (mut net, pa, pb, bridge) = fig_1_2_scatternet(2, 2);
        let src = 3; // First slave of A (0=mA, 1=mB, 2=bridge).
        let dst = 5; // First slave of B.
        assert!(net.piconets[pa].slaves.contains(&src));
        assert!(net.piconets[pb].slaves.contains(&dst));
        net.send(src, dst, 50_000);
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(
            sim.world().delivered_bytes(dst),
            50_000,
            "cross-piconet transfer must complete via bridge {bridge}"
        );
        // The bridge relayed every byte (it appears in sent counters).
        assert!(sim.world().sent_bytes(bridge) >= 50_000);
    }

    #[test]
    fn cross_piconet_slower_than_intra() {
        // The bridge time-shares, so scatternet paths pay a tax.
        let run_intra = || {
            let (mut net, _pa, _pb, _b) = fig_1_2_scatternet(2, 2);
            net.send(0, 3, 2_000_000); // master A → its own slave.
            let mut sim = Simulation::new(net);
            boot(&mut sim);
            sim.run_until(SimTime::from_secs(10));
            sim.world().delivered_bytes(3)
        };
        let run_cross = || {
            let (mut net, _pa, _pb, _b) = fig_1_2_scatternet(2, 2);
            net.send(3, 5, 2_000_000); // slave A → slave B.
            let mut sim = Simulation::new(net);
            boot(&mut sim);
            sim.run_until(SimTime::from_secs(10));
            sim.world().delivered_bytes(5)
        };
        let intra = run_intra();
        let cross = run_cross();
        assert!(
            cross < intra,
            "scatternet path ({cross} B) should lag intra-piconet ({intra} B)"
        );
        assert!(cross > 0, "but it must still make progress");
    }

    #[test]
    fn no_route_no_delivery() {
        let mut net = BtNetwork::new();
        let a = net.add_device(Point::new(0.0, 0.0), DeviceClass::Class2);
        let b = net.add_device(Point::new(2.0, 0.0), DeviceClass::Class2);
        let p = net.form_piconet(a).unwrap();
        net.join(p, b).unwrap();
        // An isolated third device.
        let c = net.add_device(Point::new(100.0, 0.0), DeviceClass::Class2);
        net.send(a, c, 1000);
        let mut sim = Simulation::new(net);
        boot(&mut sim);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.world().delivered_bytes(c), 0);
    }
}
