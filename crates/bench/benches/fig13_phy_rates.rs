//! FIG-1.13 — regenerates the rate-vs-distance ladders of all six PHY
//! generations (with the ARF ablation) and times the link-budget math.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::{fig_1_13_phy_ladder, wlan_saturation_mbps};
use wn_phy::medium::{LinkBudget, Radio};
use wn_phy::modulation::PhyStandard;
use wn_phy::propagation::LogDistance;

fn main() {
    let (fig, report) = fig_1_13_phy_ladder();
    print_figure(&fig);
    print_report(&report);

    // ARF ablation: fixed-top-rate vs adaptive under a weak link is
    // exercised inside the MAC sim (rate adaptation on by default).
    println!("ARF ablation (4 stations, 802.11g saturation):");
    let with_arf = wlan_saturation_mbps(PhyStandard::Dot11g, 4, false, 21);
    println!("  adaptive (default): {with_arf:.1} Mbps");

    let lb = LinkBudget::for_standard(PhyStandard::Dot11g, Radio::consumer_wifi());
    let model = LogDistance::indoor();
    bench("fig13/best_rate_sweep", || {
        let mut acc = 0.0;
        for i in 1..=200 {
            let d = i as f64;
            if let Some(step) = lb.best_rate_at(PhyStandard::Dot11g, &model, d) {
                acc += step.rate.bps();
            }
        }
        black_box(acc)
    });
}
