//! CRC bit-flipping forgery against WEP.
//!
//! §5.1: "An attacker, however, could recalculate the ordinary FCS
//! (for example, to hide their deliberate alteration of a packet they
//! captured and retransmitted)." WEP's ICV is a plain CRC-32 — linear
//! over XOR — and RC4 is an XOR stream cipher, so flipping ciphertext
//! bits flips the same plaintext bits, and the ICV can be *compensated
//! without knowing the key or the plaintext*.

use crate::wep::WepFrame;
use wn_crypto::crc32::bit_flip_delta;

/// Flips `mask` into the payload at byte offset `pos` of a captured
/// WEP frame and compensates the encrypted ICV so the receiver still
/// accepts the frame. No key material required.
///
/// Returns `None` when the mask would run past the payload.
pub fn flip_payload(frame: &WepFrame, pos: usize, mask: &[u8]) -> Option<WepFrame> {
    let payload_len = frame.ciphertext.len().checked_sub(4)?;
    if pos + mask.len() > payload_len {
        return None;
    }
    let mut out = frame.clone();
    for (i, &m) in mask.iter().enumerate() {
        out.ciphertext[pos + i] ^= m;
    }
    // CRC linearity: crc(p ⊕ d) = crc(p) ⊕ L(d); the same relation holds
    // under the stream cipher because XOR commutes through it.
    let tail = payload_len - pos - mask.len();
    let delta = bit_flip_delta(mask, tail);
    for (i, db) in delta.to_le_bytes().iter().enumerate() {
        out.ciphertext[payload_len + i] ^= db;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wep::{decrypt, encrypt, WepKey};

    fn key() -> WepKey {
        WepKey::new(b"13-byte-key!!").unwrap()
    }

    #[test]
    fn forged_frame_passes_icv() {
        let key = key();
        let frame = encrypt(&key, [3, 1, 4], b"transfer=0010;to=alice....");
        // Attacker flips "0010" → "9910" without the key: '0'^'9' = 0x09.
        let forged = flip_payload(&frame, 9, &[0x09, 0x09]).unwrap();
        let plain = decrypt(&key, &forged).expect("ICV must still verify — that's the flaw");
        assert_eq!(&plain, b"transfer=9910;to=alice....");
    }

    #[test]
    fn every_position_forgeable() {
        let key = key();
        let body = b"0123456789abcdef";
        let frame = encrypt(&key, [1, 2, 3], body);
        for pos in 0..body.len() {
            let forged = flip_payload(&frame, pos, &[0xFF]).unwrap();
            let plain = decrypt(&key, &forged).unwrap_or_else(|e| {
                panic!("forgery at {pos} rejected: {e}");
            });
            assert_eq!(plain[pos], body[pos] ^ 0xFF);
            // Everything else untouched.
            for (i, (&a, &b)) in plain.iter().zip(body.iter()).enumerate() {
                if i != pos {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn naive_flip_without_compensation_fails() {
        // Control: the ICV *does* catch flips when not compensated —
        // the protection is real against noise, just not against math.
        let key = key();
        let mut frame = encrypt(&key, [1, 2, 3], b"some payload");
        frame.ciphertext[0] ^= 0x01;
        assert!(decrypt(&key, &frame).is_err());
    }

    #[test]
    fn out_of_range_mask_rejected() {
        let frame = encrypt(&key(), [1, 2, 3], b"tiny");
        assert!(flip_payload(&frame, 3, &[1, 1]).is_none());
        assert!(flip_payload(&frame, 0, &[1, 1, 1, 1, 1]).is_none());
    }

    #[test]
    fn multibyte_masks_work() {
        let key = key();
        let frame = encrypt(&key, [7, 7, 7], b"AAAABBBBCCCC");
        let forged = flip_payload(&frame, 4, &[0x03, 0x03, 0x03, 0x03]).unwrap();
        let plain = decrypt(&key, &forged).unwrap();
        assert_eq!(&plain, b"AAAAAAAACCCC"); // 'B' ^ 0x03 = 'A'.
    }
}
