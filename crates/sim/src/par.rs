//! A std-only scoped-thread worker pool for simulation campaigns.
//!
//! Every figure in the reproduction sweeps dozens of *independent*
//! simulations (station counts, seeds, CW values, PHY generations).
//! [`par_map`] fans those sweep points out over a small pool of scoped
//! threads (`std::thread::scope`, so no `'static` bounds and no extra
//! dependencies) and returns the results **in input order**, which keeps
//! campaign output byte-identical regardless of worker count or
//! completion order.
//!
//! Worker count resolution, in priority order:
//! 1. an explicit count passed to [`par_map_with`],
//! 2. the `WN_THREADS` environment variable (`1` disables threading),
//! 3. [`std::thread::available_parallelism`].

use std::sync::Mutex;

/// Resolves the worker count from `WN_THREADS` or the machine size.
///
/// Returns at least 1. A malformed or zero `WN_THREADS` falls back to
/// the detected parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("WN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items`, possibly in parallel, returning
/// the results in input order.
///
/// Uses [`worker_count`] threads. `f` runs on plain scoped threads, so
/// it must be `Sync` (shared by reference across workers) and `Send`
/// along with the item and result types; the items themselves are
/// regular owned values. Ordering of results is always the input order
/// — the schedule is work-stealing but the output slots are fixed.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count (1 = run inline).
///
/// # Panics
///
/// Propagates the first panic raised inside `f` (the scope joins all
/// workers before unwinding).
pub fn par_map_with<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Shared queue of (input index, item); each worker pops the next
    // pending item and writes its result into the slot for that index.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop();
                let Some((idx, item)) = next else { break };
                let out = f(item);
                slots.lock().expect("slots poisoned")[idx] = Some(out);
            });
        }
    });

    let results = slots.into_inner().expect("slots poisoned");
    results
        .into_iter()
        .map(|r| r.expect("worker finished every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_with(8, items.clone(), |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let items: Vec<u64> = (0..50).collect();
        // A mildly uneven workload so the parallel schedule differs.
        let work = |x: u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 7) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            par_map_with(1, items.clone(), work),
            par_map_with(4, items, work)
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_with(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(par_map_with(64, vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }
}
