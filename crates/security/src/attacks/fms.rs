//! The Fluhrer–Mantin–Shamir (FMS) weak-IV key-recovery attack on WEP.
//!
//! §5.2: "As early as 2001 proof-of-concept exploits were floating
//! around and by 2005 the FBI gave a public demonstration … where they
//! cracked WEP passwords in minutes using freely available software."
//! The 2001 exploit *is* this attack: because WEP seeds RC4 with
//! `IV ‖ secret` and the IV is public, IVs of the form
//! `(B+3, 255, X)` make the first keystream byte statistically leak
//! secret byte `B` (signal ≈ 5% against a 1/256 noise floor).
//!
//! The first plaintext byte of a WEP data frame is the SNAP/LLC
//! constant `0xAA`, so the first keystream byte is simply
//! `C[0] ⊕ 0xAA` for every captured frame.
//!
//! Recovery proceeds byte by byte with vote tallies; like the real
//! tools, a small backtracking search over the top-ranked candidates
//! (the "fudge factor") makes it robust when a byte's statistics are
//! noisy, with final verification by trial decryption.

use crate::wep::{decrypt, encrypt, IvCounter, WepFrame, WepKey};

/// A captured sample: the public IV and the first keystream byte
/// (derived from the known 0xAA SNAP byte).
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// The cleartext IV.
    pub iv: [u8; 3],
    /// First keystream byte `= C[0] ⊕ 0xAA`.
    pub first_ks: u8,
}

impl Sample {
    /// Extracts a sample from a captured frame, assuming the SNAP
    /// header constant as first plaintext byte.
    pub fn from_frame(frame: &WepFrame) -> Option<Sample> {
        let c0 = *frame.ciphertext.first()?;
        Some(Sample {
            iv: frame.iv,
            first_ks: c0 ^ 0xAA,
        })
    }
}

/// Tallies FMS votes for secret byte `b` given the already-recovered
/// prefix, over all applicable samples.
fn votes_for_byte(samples: &[Sample], prefix: &[u8], b: usize) -> [u32; 256] {
    let a = (b + 3) as u8;
    let mut votes = [0u32; 256];
    for s in samples {
        if s.iv[0] != a || s.iv[1] != 255 {
            continue;
        }
        // Known key bytes: IV(3) + recovered prefix.
        let mut key = [0u8; 16];
        key[..3].copy_from_slice(&s.iv);
        key[3..3 + prefix.len()].copy_from_slice(prefix);
        let known = 3 + b;
        // Run the KSA for the first `known` steps.
        let mut state: [u8; 256] = core::array::from_fn(|i| i as u8);
        let mut j: u8 = 0;
        for i in 0..known {
            j = j
                .wrapping_add(state[i])
                .wrapping_add(key[i % (3 + prefix.len()).max(1)]);
            state.swap(i, j as usize);
        }
        // The "resolved" condition.
        let s1 = state[1] as usize;
        if s1 >= known || (s1 + state[s1] as usize) != known {
            continue;
        }
        // Invert the permutation at the observed keystream byte.
        let mut inv = [0u8; 256];
        for (i, &v) in state.iter().enumerate() {
            inv[v as usize] = i as u8;
        }
        let vote = inv[s.first_ks as usize]
            .wrapping_sub(j)
            .wrapping_sub(state[known]);
        votes[vote as usize] += 1;
    }
    votes
}

/// Public vote tally for one secret byte — exposed so experiments can
/// show the statistical signal (and its noise floor) directly.
pub fn vote_table(samples: &[Sample], prefix: &[u8], b: usize) -> [u32; 256] {
    votes_for_byte(samples, prefix, b)
}

/// Top `k` candidates by vote count (ties broken by value).
fn top_candidates(votes: &[u32; 256], k: usize) -> Vec<u8> {
    let mut idx: Vec<u8> = (0..=255).collect();
    idx.sort_by_key(|&v| std::cmp::Reverse(votes[v as usize]));
    idx.truncate(k);
    idx
}

/// Result of a key-recovery run.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// The recovered secret, if verification succeeded.
    pub key: Option<Vec<u8>>,
    /// Search nodes explored (effort metric for EXPERIMENTS.md).
    pub nodes_explored: u64,
    /// Samples consumed.
    pub samples_used: usize,
}

/// Attempts to recover a WEP secret of `secret_len` bytes from
/// captured samples, verifying candidates against `reference` (a
/// captured frame with known plaintext — trial decryption must yield a
/// valid ICV).
pub fn recover_key(
    samples: &[Sample],
    secret_len: usize,
    reference: &WepFrame,
    fudge: usize,
    node_budget: u64,
) -> Recovery {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    // Best-first search over candidate prefixes, scored by the sum of
    // log-vote weights — the same idea as aircrack's key ranking: a
    // byte whose statistics are noisy gets explored at several
    // candidate values, ordered by global plausibility.
    struct Node {
        score: f64,
        prefix: Vec<u8>,
    }
    impl PartialEq for Node {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score
        }
    }
    impl Eq for Node {}
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> Ordering {
            self.score
                .partial_cmp(&other.score)
                .unwrap_or(Ordering::Equal)
        }
    }

    let mut nodes = 0u64;
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        score: 0.0,
        prefix: Vec::new(),
    });
    while let Some(Node { score, prefix }) = heap.pop() {
        if nodes >= node_budget {
            break;
        }
        nodes += 1;
        if prefix.len() == secret_len {
            if let Ok(key) = WepKey::new(&prefix) {
                if decrypt(&key, reference).is_ok() {
                    return Recovery {
                        key: Some(prefix),
                        nodes_explored: nodes,
                        samples_used: samples.len(),
                    };
                }
            }
            continue;
        }
        let votes = votes_for_byte(samples, &prefix, prefix.len());
        for &cand in &top_candidates(&votes, fudge) {
            let mut next = prefix.clone();
            next.push(cand);
            heap.push(Node {
                score: score + (votes[cand as usize] as f64 + 1.0).ln(),
                prefix: next,
            });
        }
    }
    Recovery {
        key: None,
        nodes_explored: nodes,
        samples_used: samples.len(),
    }
}

/// Simulates an eavesdropping capture: the victim network sends
/// SNAP-headed frames under sequential IVs (as real devices did); the
/// attacker keeps the weak-IV samples. Returns (samples, one reference
/// frame for verification, total frames observed).
pub fn capture_weak_ivs(key: &WepKey, frames_to_observe: u32) -> (Vec<Sample>, WepFrame, u32) {
    let mut ivs = IvCounter(0);
    let mut samples = Vec::new();
    let payload = b"\xAA\xAA\x03\x00\x00\x00\x08\x06 some arp body";
    let reference = encrypt(key, [200, 200, 200], payload);
    for _ in 0..frames_to_observe {
        let iv = ivs.next();
        // The attacker only stores weak-form IVs (A, 255, X).
        if iv[1] == 255 && (3..=(2 + key.secret().len() as u32) as u8 + 1).contains(&iv[0]) {
            let f = encrypt(key, iv, payload);
            samples.push(Sample::from_frame(&f).expect("non-empty"));
        }
    }
    (samples, reference, frames_to_observe)
}

/// Generates a *directed* weak-IV capture: every (A, 255, X) IV for
/// the key length — what an active attacker provokes with replayed
/// ARPs in minutes rather than waiting hours.
pub fn directed_capture(key: &WepKey) -> (Vec<Sample>, WepFrame) {
    let payload = b"\xAA\xAA\x03\x00\x00\x00\x08\x06 some arp body";
    let reference = encrypt(key, [200, 200, 200], payload);
    let mut samples = Vec::new();
    for b in 0..key.secret().len() {
        let a = (b + 3) as u8;
        for x in 0..=255u8 {
            let f = encrypt(key, [a, 255, x], payload);
            samples.push(Sample::from_frame(&f).expect("non-empty"));
        }
    }
    (samples, reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_40_bit_key() {
        let key = WepKey::new(b"\x01\x23\x45\x67\x89").unwrap();
        let (samples, reference) = directed_capture(&key);
        let r = recover_key(&samples, 5, &reference, 3, 10_000);
        assert_eq!(r.key.as_deref(), Some(&b"\x01\x23\x45\x67\x89"[..]));
    }

    #[test]
    fn recovers_an_ascii_40_bit_key() {
        let key = WepKey::new(b"Kfc3!").unwrap();
        let (samples, reference) = directed_capture(&key);
        let r = recover_key(&samples, 5, &reference, 3, 10_000);
        assert_eq!(r.key.as_deref(), Some(&b"Kfc3!"[..]));
    }

    #[test]
    fn recovers_a_104_bit_key() {
        // The text's "128-bit remains one of the most common" — the
        // attack scales linearly in key length, which is exactly why
        // longer WEP keys bought nothing.
        let key = WepKey::new(b"\x0f\x33\xA2\x7e\x51\x00\xff\x10\x20\x30\x9a\x62\x04").unwrap();
        let (samples, reference) = directed_capture(&key);
        let r = recover_key(&samples, 13, &reference, 4, 200_000);
        assert_eq!(r.key.as_deref(), Some(&key.secret()[..]));
    }

    #[test]
    fn fails_without_enough_samples() {
        let key = WepKey::new(b"\x01\x23\x45\x67\x89").unwrap();
        let (samples, reference) = directed_capture(&key);
        // Starve the attacker: keep only a handful of samples.
        let few = &samples[..8];
        let r = recover_key(few, 5, &reference, 2, 200);
        assert!(r.key.is_none());
    }

    #[test]
    fn passive_capture_collects_weak_ivs_over_time() {
        let key = WepKey::new(b"\x01\x23\x45\x67\x89").unwrap();
        // The IV counter is little-endian, so the weak form
        // (A, 255, X) appears once per 65 536 frames per X value —
        // this is why the passive attack needs millions of frames.
        let (samples, _, observed) = capture_weak_ivs(&key, 0x0009_0000);
        assert_eq!(observed, 0x0009_0000);
        // Every family has accumulated several samples already.
        for b in 0..5u8 {
            let n = samples.iter().filter(|s| s.iv[0] == b + 3).count();
            assert!((8..=10).contains(&n), "family {}: {n} samples", b + 3);
        }
        // Full coverage of a family takes a 2^24 wrap — the "minutes"
        // figure presumes *active* traffic generation (directed mode).
        assert!(samples.len() < 256, "passive capture is slow by design");
    }

    #[test]
    fn verification_rejects_wrong_keys() {
        let key = WepKey::new(b"\x01\x23\x45\x67\x89").unwrap();
        let (_, reference) = directed_capture(&key);
        let wrong = WepKey::new(b"\x01\x23\x45\x67\x88").unwrap();
        assert!(decrypt(&wrong, &reference).is_err());
        assert!(decrypt(&key, &reference).is_ok());
    }
}
