//! Hidden-terminal regression test (§4.2): two senders far enough
//! apart to be mutually inaudible both talk to a receiver halfway
//! between them. Physical carrier sense is useless — each sender
//! always finds the channel idle — so plain DCF collides at the
//! receiver over and over, while RTS/CTS lets the receiver's CTS set
//! the other sender's NAV and serialise the exchanges.
//!
//! The geometry is asserted from the propagation model itself (the
//! sender→sender ray crosses a steel wall and lands far below both the
//! −82 dBm carrier-sense floor and any decodable SNR, the
//! sender→receiver rays clear the wall and stay comfortably decodable,
//! and the equal-power collision at the receiver is beyond any capture
//! margin), so the MAC-level assertions can't silently pass on a
//! topology that stopped being hidden.

use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::frame::{DsBits, Frame, SequenceControl};
use wireless_networks::mac80211::sim::{boot, inject_at, MacConfig, NullUpper, WlanWorld};
use wireless_networks::phy::geom::{Point, Wall};
use wireless_networks::phy::medium::{LinkBudget, Radio};
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::phy::propagation::IndoorWalls;
use wireless_networks::sim::{SimTime, Simulation, Trace, TraceEvent};

/// The senders sit at ±HALF_M on the x axis; the receiver is north of
/// the wall's end, so both uplink rays clear it.
const HALF_M: f64 = 90.0;
const RECEIVER: Point = Point {
    x: 0.0,
    y: 30.0,
    z: 0.0,
};
const SENDER_A: Point = Point {
    x: -HALF_M,
    y: 0.0,
    z: 0.0,
};
const SENDER_B: Point = Point {
    x: HALF_M,
    y: 0.0,
    z: 0.0,
};
/// Enough backlog to keep both senders saturated past the horizon —
/// winner-takes-all bursts must never drain a queue early.
const FRAMES_PER_SENDER: u64 = 400;
const PAYLOAD: usize = 800;
const HORIZON_MS: u64 = 500;

/// Indoor propagation with one steel wall on the x = 0 line, spanning
/// only the southern half — it cuts the A↔B ray but not A→R or B→R.
fn floor_plan() -> IndoorWalls {
    IndoorWalls::new(vec![Wall::new(
        Point::new(0.0, -200.0),
        Point::new(0.0, 20.0),
        30.0,
    )])
}

fn run(rts_threshold: usize) -> WlanWorld {
    let mut cfg = MacConfig::new(PhyStandard::Dot11b);
    cfg.seed = 7;
    cfg.arf = false;
    cfg.rts_threshold = rts_threshold;
    cfg.queue_limit = FRAMES_PER_SENDER as usize + 16;

    let mut world = WlanWorld::new(cfg);
    world.trace = Trace::new(1 << 15);
    let plan = floor_plan();
    // The floor plan is static (loss ignores the time argument), so the
    // neighbor cache stays valid — and exercised — under this model.
    world.set_loss_model_static(Box::new(move |a, b, freq, _| plan.loss_between(a, b, freq)));
    for (i, pos) in [RECEIVER, SENDER_A, SENDER_B].into_iter().enumerate() {
        world.add_station(MacAddr::station(i as u32), pos, Box::new(NullUpper));
    }

    let mut sim = Simulation::new(world);
    boot(&mut sim);
    // Both hidden senders get their whole backlog up front, so they
    // stay saturated and every contention round is the synchronised
    // worst case carrier sense is supposed to (and here cannot)
    // resolve.
    for k in 0..FRAMES_PER_SENDER {
        for sender in [1usize, 2] {
            inject_at(
                &mut sim,
                SimTime::ZERO,
                sender,
                Frame::data(
                    DsBits::Ibss,
                    MacAddr::station(0),
                    MacAddr::station(sender as u32),
                    MacAddr::random_ibss_bssid(1),
                    SequenceControl::default(),
                    vec![0xAB; PAYLOAD],
                ),
            );
        }
        let _ = k;
    }
    sim.run_until(SimTime::from_millis(HORIZON_MS));
    sim.into_world()
}

/// The topology really is a hidden-terminal one, straight from the
/// propagation model: senders mutually far below the carrier-sense
/// floor (and any decodable SNR, so not even NAV leaks across), both
/// uplinks decodable, and the equal-power collision at the receiver
/// beyond any capture margin.
#[test]
fn geometry_is_hidden_but_decodable() {
    let budget = LinkBudget::for_standard(PhyStandard::Dot11b, Radio::consumer_wifi());
    let plan = floor_plan();
    let cs_floor = MacConfig::new(PhyStandard::Dot11b).cs_threshold;

    let cross_loss = plan.loss_between(SENDER_A, SENDER_B, budget.frequency);
    let uplink_loss = plan.loss_between(SENDER_A, RECEIVER, budget.frequency);
    let sender_to_sender = budget.rx_power(cross_loss);
    let sender_to_rx = budget.rx_power(uplink_loss);
    assert!(
        sender_to_sender.value() < cs_floor.value() - 15.0,
        "senders hear each other at {sender_to_sender:?} — not hidden"
    );
    assert!(
        sender_to_rx.value() > cs_floor.value() + 5.0,
        "uplink too weak at {sender_to_rx:?}"
    );
    // The mirror uplink is the same by symmetry.
    assert_eq!(
        plan.loss_between(SENDER_B, RECEIVER, budget.frequency)
            .value(),
        uplink_loss.value()
    );
    // Equal-power colliders: no capture even with a generous margin...
    assert!(!budget.captures(uplink_loss, &[sender_to_rx], 10.0));
    // ...while the same frame alone sails through.
    assert!(budget.captures(uplink_loss, &[], 10.0));
}

/// The MAC-level regression proper. With two saturated hidden senders,
/// plain DCF keeps colliding full data frames at the receiver — both
/// senders walk retry ladders, some MSDUs exhaust them, and not a
/// single NAV reservation appears because nothing decodable ever
/// crosses the wall. Switching on RTS/CTS, the receiver's CTS (which
/// both senders hear fine) sets the other sender's NAV: reservations
/// show up at *both* senders, no retry ladder exhausts, and data-frame
/// carnage at the receiver drops to the short-control-frame residue.
#[test]
fn rts_cts_rescues_what_plain_dcf_loses() {
    let plain = run(usize::MAX);
    let protected = run(0);

    for (label, w) in [("plain", &plain), ("rts", &protected)] {
        eprintln!(
            "{label}: delivered={} rx_errors={} tx1=({} retries, {} fail, {} ok) tx2=({} retries, {} fail, {} ok)",
            w.stats(0).rx_accepted,
            w.stats(0).rx_errors,
            w.stats(1).retries,
            w.stats(1).tx_failures,
            w.stats(1).tx_completions,
            w.stats(2).retries,
            w.stats(2).tx_failures,
            w.stats(2).tx_completions,
        );
    }

    // Saturation precondition for both runs: neither sender drained.
    for w in [&plain, &protected] {
        for sender in [1usize, 2] {
            assert!(
                w.pending_msdus(sender) > 0,
                "sender {sender} drained its backlog — not saturated"
            );
        }
    }

    // Plain DCF: both senders walk the retry ladder (typed Retry
    // events), some MSDUs exhaust it, the receiver destroys piles of
    // full-length data frames — and the trace shows *zero* NAV
    // reservations at the senders, because virtual carrier sense never
    // gets anything decodable to work with.
    for sender in [1u32, 2] {
        let retries = plain
            .trace
            .events()
            .filter(|(_, e)| matches!(e, TraceEvent::Retry { station, .. } if *station == sender))
            .count();
        assert!(
            retries >= 10,
            "plain DCF: sender {sender} only retried {retries} times — not colliding?"
        );
        assert!(
            !plain
                .trace
                .events()
                .any(|(_, e)| matches!(e, TraceEvent::Nav { station, .. } if *station == sender)),
            "plain DCF: sender {sender} set a NAV — the terminals are not hidden"
        );
    }
    let plain_failures = plain.stats(1).tx_failures + plain.stats(2).tx_failures;
    assert!(
        plain_failures > 0,
        "plain DCF: no retry ladder ever exhausted"
    );
    assert!(
        plain.stats(0).rx_errors >= 50,
        "plain DCF: receiver saw only {} collision-destroyed frames",
        plain.stats(0).rx_errors
    );

    // RTS/CTS: NAV reservations appear at both hidden senders (typed
    // Nav events from the overheard CTS), no MSDU is ever abandoned,
    // and the receiver-side collision count collapses — only cheap
    // control frames still collide.
    for sender in [1u32, 2] {
        assert!(
            protected
                .trace
                .events()
                .any(|(_, e)| matches!(e, TraceEvent::Nav { station, .. } if *station == sender)),
            "RTS/CTS: sender {sender} never honoured a NAV reservation"
        );
    }
    assert_eq!(
        protected.stats(1).tx_failures + protected.stats(2).tx_failures,
        0,
        "RTS/CTS: a protected MSDU still exhausted its retry ladder"
    );
    assert!(
        2 * protected.stats(0).rx_errors < plain.stats(0).rx_errors,
        "RTS/CTS did not tame receiver-side collisions ({} vs {})",
        protected.stats(0).rx_errors,
        plain.stats(0).rx_errors
    );
    let plain_retries = plain.stats(1).retries + plain.stats(2).retries;
    let protected_retries = protected.stats(1).retries + protected.stats(2).retries;
    assert!(
        protected_retries < plain_retries,
        "RTS/CTS retried more ({protected_retries}) than plain DCF ({plain_retries})"
    );
    // And the protected runs still move real traffic.
    assert!(
        protected.stats(0).rx_accepted >= 150,
        "RTS/CTS delivered only {} frames in {HORIZON_MS} ms",
        protected.stats(0).rx_accepted
    );
}
