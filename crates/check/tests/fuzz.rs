//! End-to-end fuzzer tests: a clean seed range stays clean, a planted
//! bug is caught by an oracle and shrunk to a tiny repro, and the
//! range digest is identical across worker counts.

use wn_check::scenario::{ScenarioKind, WlanScenario};
use wn_check::{run, shrink, station_count, Scenario, ScenarioGen};

#[test]
fn first_seeds_are_clean() {
    for r in wn_check::check_range(0, 40, 1) {
        assert!(
            r.violations.is_empty(),
            "seed {} ({}) violated: {:?}",
            r.seed,
            r.summary,
            r.violations
        );
    }
}

#[test]
fn range_digest_is_thread_count_invariant() {
    let one = wn_check::range_digest(0, 24, 1);
    let eight = wn_check::range_digest(0, 24, 8);
    assert_eq!(one, eight);
    assert_eq!(one.lines().count(), 24);
}

/// A saturated deaf-sink WLAN with the retry fail-point armed: every
/// MSDU walks the retry ladder one rung too far.
fn planted_bug_scenario(stations: usize, failpoint: bool) -> Scenario {
    Scenario {
        seed: 42,
        kind: ScenarioKind::Wlan(WlanScenario {
            stations,
            radius_m: 10.0,
            standard: wn_phy::modulation::PhyStandard::Dot11b,
            payload: 400,
            frames_per_sender: 12,
            interval_us: 2_000,
            duration_ms: 80,
            rts_threshold: usize::MAX,
            frag_threshold: usize::MAX,
            queue_limit: 32,
            retry_limit_short: 5,
            retry_limit_long: 3,
            cw_min_override: None,
            cw_max_override: None,
            arf: false,
            deaf_sink: true,
            failpoint_retry_overrun: failpoint,
            edca: false,
            ampdu_max_mpdus: 16,
            ampdu_per_mpdu_loss: 0.0,
            failpoint_aifsn_swap: false,
            obss_cell: false,
        }),
    }
}

#[test]
fn planted_retry_overrun_is_caught_and_shrunk() {
    // Without the fail-point the same stress scenario is clean…
    let clean = run::check_scenario(&planted_bug_scenario(12, false));
    assert!(clean.is_empty(), "control scenario violated: {clean:?}");

    // …with it, the retry oracle fires…
    let sc = planted_bug_scenario(12, true);
    let violations = run::check_scenario(&sc);
    assert!(
        violations.iter().any(|v| v.oracle == "retry-bound"),
        "fail-point not caught: {violations:?}"
    );

    // …and the shrinker reduces it to a handful of stations while the
    // violation still reproduces.
    let still_fails = |c: &Scenario| {
        run::check_scenario(c)
            .iter()
            .any(|v| v.oracle == "retry-bound")
    };
    let min = shrink(&sc, still_fails);
    assert!(
        station_count(&min) <= 5,
        "shrunk repro still has {} stations",
        station_count(&min)
    );
    assert!(still_fails(&min), "shrunk scenario no longer fails");
}

#[test]
fn ledger_samples_cover_the_run_and_balance() {
    // The frame-ledger oracle is only as good as its samples: a busy
    // scenario must yield mid-run samples with traffic actually in
    // flight (non-zero arena refs), and they must all balance. A
    // drained end-of-run world balancing trivially would prove
    // nothing — this pins the slicing machinery itself.
    let art = run::run_scenario(&planted_bug_scenario(12, false));
    let facts = art.wlan.expect("wlan scenario yields wlan facts");
    assert_eq!(facts.ledger.len(), 8, "one sample per slice");
    assert!(
        facts.ledger.iter().any(|&(refs, _)| refs > 0),
        "no sample caught frames in flight — slices misplaced?"
    );
    for (i, &(refs, held)) in facts.ledger.iter().enumerate() {
        assert_eq!(refs, held, "ledger sample {i} out of balance");
    }
}

#[test]
fn ledger_oracle_fires_on_imbalance() {
    // Synthesise an artifact whose ledger is out of balance and make
    // sure the oracle actually reports it (guards against the oracle
    // being registered but vacuous).
    let mut art = run::run_scenario(&planted_bug_scenario(4, false));
    art.wlan.as_mut().expect("wlan facts").ledger = vec![(3, 2)];
    let violations = run::run_oracles(&art);
    assert!(
        violations.iter().any(|v| v.oracle == "frame-ledger"),
        "imbalanced ledger not reported: {violations:?}"
    );
}

/// A contended, fully-draining EDCA world — the regime where the
/// priority-inversion oracle's censoring guards all pass. Drawn from
/// the QoS corpus itself (seed 1, which the `--qos` self-test leg
/// catches) with the fail-point toggled explicitly, so the test pins
/// the exact scenario the fuzzer minimises.
fn qos_scenario(aifsn_swap: bool) -> Scenario {
    let mut sc = ScenarioGen::with_qos().scenario(1);
    match sc.kind {
        ScenarioKind::Wlan(ref mut w) => w.failpoint_aifsn_swap = aifsn_swap,
        _ => panic!("qos corpus drew a non-WLAN world"),
    }
    sc
}

#[test]
fn qos_seeds_are_clean() {
    let gen = ScenarioGen::with_qos();
    for seed in 0..30 {
        let r = wn_check::check_seed_gen(&gen, seed, Default::default(), true);
        assert!(
            r.violations.is_empty(),
            "qos seed {} ({}) violated: {:?}",
            r.seed,
            r.summary,
            r.violations
        );
    }
}

#[test]
fn planted_aifsn_swap_is_caught_and_shrunk() {
    // Without the fail-point the same contended QoS world is clean…
    let clean = run::check_scenario(&qos_scenario(false));
    assert!(clean.is_empty(), "control scenario violated: {clean:?}");

    // …with it, AC_VO runs on AC_BK's parameters and the
    // priority-inversion oracle fires…
    let sc = qos_scenario(true);
    let fires = |c: &Scenario| {
        run::check_scenario(c)
            .iter()
            .any(|v| v.oracle == "edca-priority")
    };
    assert!(fires(&sc), "planted AIFSN swap not caught");

    // …and the shrinker reduces the repro while it still fails.
    let min = shrink(&sc, fires);
    assert!(
        station_count(&min) <= 3,
        "shrunk repro still has {} stations",
        station_count(&min)
    );
    assert!(fires(&min), "shrunk scenario no longer fails");
}

#[test]
fn block_ack_oracle_fires_on_tampered_counters() {
    // Vacuity guard: cook the books after a clean QoS run — one extra
    // claimed completion must split the block-ack ledger.
    let mut art = run::run_scenario(&qos_scenario(false));
    art.wlan.as_mut().expect("wlan facts").stats[1].tx_completions += 1;
    let violations = run::run_oracles(&art);
    assert!(
        violations.iter().any(|v| v.oracle == "block-ack-window"),
        "tampered completion count not reported: {violations:?}"
    );
}

#[test]
fn armed_generator_seeds_are_caught() {
    // At least one generated deaf-sink scenario in a small seed range
    // must trip the retry oracle when the fail-point generator is used.
    let gen = ScenarioGen::with_retry_overrun();
    let caught = (0..60u64).any(|seed| {
        let sc = gen.scenario(seed);
        match sc.kind {
            ScenarioKind::Wlan(ref w) if w.deaf_sink => run::check_scenario(&sc)
                .iter()
                .any(|v| v.oracle == "retry-bound"),
            _ => false,
        }
    });
    assert!(caught);
}
