//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulator (propagation shadowing,
//! backoff draws, traffic arrival jitter, mobility) draws from this
//! module, so a scenario seed fully determines the run. The generator is
//! xoshiro256** seeded via SplitMix64 — both implemented here from the
//! published reference algorithms so the workspace has no dependency on
//! external RNG crates for its core determinism guarantee.

/// A deterministic xoshiro256** pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step used for seeding and stream splitting.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical
    /// streams; different seeds produce statistically independent streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each node / layer its own stream so that adding a
    /// node does not perturb the draws of unrelated nodes.
    pub fn fork(&mut self, tag: u64) -> Rng {
        let mut sm = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Lemire-style rejection to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = mul_hi_lo(r, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive({lo}, {hi})");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        // Reject u1 == 0 to keep ln finite.
        let mut u1 = self.f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.f64();
        }
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// An exponential draw with the given mean (inter-arrival model).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let mut u = self.f64();
        while u <= f64::MIN_POSITIVE {
            u = self.f64();
        }
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// 128-bit multiply returning (high, low) 64-bit halves.
fn mul_hi_lo(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_continuation() {
        let mut parent = Rng::new(7);
        let mut child = parent.fork(1);
        let child_first = child.next_u64();
        // The parent keeps producing values distinct from the child's.
        assert_ne!(parent.next_u64(), child_first);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_300..10_700).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(3, 6) {
                3 => saw_lo = true,
                6 => saw_hi = true,
                4 | 5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::new(29);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*r.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
