//! Spatial hash grid edge cases (DESIGN.md §17): the grid-backed
//! sparse neighbor cache and grid shard planner must stay coherent —
//! and agree with the dense/exhaustive reference paths — at cell
//! boundaries, in degenerate one-cell worlds, in worlds where nothing
//! is audible, and under mobility that hops stations across cells.

use wireless_networks::core::scenarios::{metro_dcf_planning_world, CITY_DCF_RANGE_M};
use wireless_networks::mac80211::sim::{MacConfig, NullUpper, WlanWorld};
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::PhyStandard;
use wireless_networks::sim::{Rng, SimTime};

fn world_with(positions: &[Point], seed: u64) -> WlanWorld {
    let mut cfg = MacConfig::new(PhyStandard::Dot11g);
    cfg.seed = seed;
    let mut world = WlanWorld::new(cfg);
    world.add_stations(positions.len(), |i| positions[i], |_| Box::new(NullUpper));
    world
}

/// Primes the cache and asserts every grid structural invariant plus
/// pairwise power coherence against a fresh link-budget evaluation.
fn assert_coherent(world: &mut WlanWorld, what: &str) {
    world.prime_neighbor_cache(SimTime::ZERO);
    let grid = world.grid_incoherence(SimTime::ZERO);
    assert!(grid.is_empty(), "{what}: grid incoherent: {grid:?}");
    assert!(
        world.neighbor_cache_incoherence(SimTime::ZERO).is_none(),
        "{what}: cached powers diverged from a fresh evaluation"
    );
}

/// Asserts the grid planner and the exhaustive O(n²) planner produce
/// the identical partition and lookahead on `world`.
fn assert_planners_agree(world: &WlanWorld, range: Option<f64>, what: &str) {
    let grid = world.shard_plan(SimTime::ZERO, range);
    let exhaustive = world.shard_plan_exhaustive(SimTime::ZERO, range);
    assert_eq!(
        grid.shard_of, exhaustive.shard_of,
        "{what}: planners disagree on the partition"
    );
    assert_eq!(
        grid.lookahead, exhaustive.lookahead,
        "{what}: planners disagree on the lookahead"
    );
    assert!(
        world.shard_plan_incoherence(&grid, SimTime::ZERO).is_none(),
        "{what}: plan failed re-validation"
    );
}

/// Stations planted exactly on candidate cell boundaries — the origin,
/// axis-aligned lattice points, and sign flips around zero (floor
/// semantics put a boundary position in the higher cell). The cache
/// must store the same powers a fresh evaluation produces and both
/// planners must agree.
#[test]
fn boundary_positions_stay_coherent() {
    let reach = {
        let w = world_with(&[Point::new(0.0, 0.0)], 7);
        w.audible_reach_m(SimTime::ZERO)
            .expect("default loss model is isotropic")
    };
    // Lattice multiples of the audible reach are exactly the grid's
    // cell edges; epsilon nudges straddle them from both sides.
    let mut positions = Vec::new();
    for i in -2i32..=2 {
        let x = f64::from(i) * reach;
        positions.push(Point::new(x, 0.0));
        positions.push(Point::new(x + 1e-9, reach));
        positions.push(Point::new(x - 1e-9, -reach));
    }
    let mut world = world_with(&positions, 7);
    assert_coherent(&mut world, "boundary lattice");
    assert_planners_agree(&world, Some(reach), "boundary lattice");
    assert_planners_agree(&world, None, "boundary lattice, infinite range");
}

/// The degenerate world: every station inside one grid cell. The
/// sparse build must store every ordered pair (nothing is truncated)
/// and the planners must fuse everything into a single shard.
#[test]
fn one_cell_world_stores_every_pair() {
    let mut rng = Rng::new(0xD1CE);
    let n = 17usize;
    let positions: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.f64_range(-5.0, 5.0), rng.f64_range(-5.0, 5.0)))
        .collect();
    let mut world = world_with(&positions, 3);
    assert_coherent(&mut world, "one-cell cluster");
    let (sparse, stored) = world.neighbor_cache_stats().expect("cache primed");
    assert!(sparse, "grid worlds build sparse rows");
    assert_eq!(
        stored,
        n * (n - 1),
        "a one-cell cluster must keep the full pair set"
    );
    let plan = world.shard_plan(SimTime::ZERO, Some(10.0));
    assert_eq!(plan.shards.len(), 1, "one cell, one shard");
    assert_planners_agree(&world, Some(10.0), "one-cell cluster");
}

/// The opposite degenerate world: stations flung so far apart that no
/// pair is audible. Sparse rows store nothing — and that emptiness is
/// the coherent answer, because every fresh evaluation lands below the
/// carrier-sense floor. With a finite coupling range every station is
/// its own shard.
#[test]
fn inaudible_world_stores_nothing_and_never_fuses() {
    let positions: Vec<Point> = (0..8)
        .map(|i| Point::new(f64::from(i as u32) * 250_000.0, 0.0))
        .collect();
    let mut world = world_with(&positions, 11);
    assert_coherent(&mut world, "inaudible spread");
    let (sparse, stored) = world.neighbor_cache_stats().expect("cache primed");
    assert!(sparse);
    assert_eq!(stored, 0, "nothing is audible, nothing is stored");
    let plan = world.shard_plan(SimTime::ZERO, Some(100.0));
    assert_eq!(
        plan.shards.len(),
        positions.len(),
        "uncoupled stations must each own a shard"
    );
    assert_planners_agree(&world, Some(100.0), "inaudible spread");
}

/// Seeded teleport storm: every hop lands before/after other hops at
/// arbitrary scales, repeatedly crossing cell boundaries (including
/// hops back into the same cell and hops across many cells at once).
/// After every single move the grid structure, the cached powers and
/// both planners must still agree — the incremental old-cell/new-cell
/// patch has no stale corner.
#[test]
fn mobility_crossing_cells_stays_coherent() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0x6E1D ^ seed);
        let n = 5 + rng.below(8) as usize;
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.f64_range(-400.0, 400.0), rng.f64_range(-400.0, 400.0)))
            .collect();
        let mut world = world_with(&positions, seed);
        world.prime_neighbor_cache(SimTime::ZERO);
        for hop in 0..24 {
            let station = rng.below(n as u64) as usize;
            // Mix short nudges (same cell) with kilometre leaps
            // (several cells at once).
            let scale = if rng.below(2) == 0 { 30.0 } else { 2_000.0 };
            let pos = Point::new(rng.f64_range(-scale, scale), rng.f64_range(-scale, scale));
            world.set_position(station, pos, SimTime::ZERO);
            let grid = world.grid_incoherence(SimTime::ZERO);
            assert!(
                grid.is_empty(),
                "seed {seed} hop {hop}: grid incoherent: {grid:?}"
            );
            assert!(
                world.neighbor_cache_incoherence(SimTime::ZERO).is_none(),
                "seed {seed} hop {hop}: stale cached power after the move"
            );
        }
        assert_planners_agree(&world, Some(150.0), "post-mobility");
    }
}

/// Incremental re-planning: after one station moves, patching the old
/// plan through `shard_replan_station` must equal a from-scratch
/// `shard_plan` — including when the mover was a cut vertex whose
/// departure splits its old shard, and when it bridges two shards.
#[test]
fn incremental_replan_matches_fresh_plan() {
    let world = metro_dcf_planning_world(2, 3, 4, 20, 9);
    let range = Some(CITY_DCF_RANGE_M);
    let mut plan = world.shard_plan(SimTime::ZERO, range);
    let mut world = world;
    let mut rng = Rng::new(0xBEEF);
    let n = plan.shard_of.len();
    for hop in 0..12 {
        let station = rng.below(n as u64) as usize;
        let pos = Point::new(rng.f64_range(-300.0, 900.0), rng.f64_range(-300.0, 700.0));
        world.set_position(station, pos, SimTime::ZERO);
        let patched = world.shard_replan_station(&plan, station, SimTime::ZERO);
        let fresh = world.shard_plan(SimTime::ZERO, range);
        assert_eq!(
            patched.shard_of, fresh.shard_of,
            "hop {hop}: incremental replan diverged from the fresh plan"
        );
        assert_eq!(
            patched.lookahead, fresh.lookahead,
            "hop {hop}: incremental replan picked a different lookahead"
        );
        assert!(
            world
                .shard_plan_incoherence(&patched, SimTime::ZERO)
                .is_none(),
            "hop {hop}: patched plan failed re-validation"
        );
        plan = patched;
    }
}
