//! Integration test for the process-global observability kill switch.
//!
//! Lives in its own integration-test binary (own process) so toggling
//! the global flag cannot race with the library's unit tests, which run
//! as threads of a different binary.

use wn_sim::trace::{Level, Trace, TraceEvent};
use wn_sim::{observability_enabled, set_observability, SimTime};

#[test]
fn kill_switch_suppresses_retention_and_restores() {
    assert!(observability_enabled(), "default must be enabled");
    let mut tr = Trace::new(16);

    tr.info(SimTime::ZERO, "x", "before");
    set_observability(false);
    assert!(!observability_enabled());
    tr.info(SimTime::from_millis(1), "x", "while off");
    tr.event(
        SimTime::from_millis(2),
        Level::Warn,
        "x",
        TraceEvent::Handoff { station: 1 },
    );
    set_observability(true);
    tr.info(SimTime::from_millis(3), "x", "after");

    let msgs: Vec<&str> = tr.records().map(|r| r.message.as_str()).collect();
    assert_eq!(msgs, vec!["before", "after"]);
    assert_eq!(tr.dropped(), 0, "suppressed records are not 'evictions'");
}
