//! IEEE CRC-32 (polynomial `0x04C11DB7`, reflected form `0xEDB88320`).
//!
//! This single algorithm plays two roles in the source text:
//!
//! 1. The 802.11 **frame check sequence** (FCS) — §4.2: "The
//!    transmitting STA uses a cyclic redundancy check (CRC) over all the
//!    fields of the MAC header and the frame body field".
//! 2. The WEP **integrity check value** (ICV) — §5.1 points out the FCS
//!    "are not considered secure"; the [`fn@crate::crc32`] linearity that
//!    [`bit_flip_delta`] exposes is exactly why.

/// The reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// A 256-entry lookup table computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the IEEE CRC-32 of `data` (init `0xFFFF_FFFF`, final xor).
///
/// # Examples
///
/// ```
/// assert_eq!(wn_crypto::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Continues a CRC computation over another chunk.
///
/// `state` is the *raw* register (pre-final-xor); start from
/// `0xFFFF_FFFF` and xor with `0xFFFF_FFFF` when done.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// An incremental CRC-32 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs more bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the CRC value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// The CRC delta produced by xoring `mask` into a message at any
/// position, exploiting CRC linearity: `crc(m ⊕ d) = crc(m) ⊕ L(d)`
/// where `L` depends only on `d` and the tail length.
///
/// This is the arithmetic heart of the WEP bit-flipping attack the text
/// alludes to ("An attacker, however, could recalculate the ordinary
/// FCS ... to hide their deliberate alteration of a packet").
/// `tail_len` is the number of message bytes *after* the flipped bytes.
pub fn bit_flip_delta(mask: &[u8], tail_len: usize) -> u32 {
    // CRC of the mask with `tail_len` zero bytes appended, computed with
    // an all-zero register so only the linear part contributes.
    let mut reg = update(0, mask);
    for _ in 0..tail_len {
        reg = (reg >> 8) ^ TABLE[(reg & 0xFF) as usize];
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_strings() {
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello wireless world";
        let mut h = Crc32::new();
        h.write(&data[..7]);
        h.write(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn crc_detects_single_bit_errors() {
        let msg = b"management frame body".to_vec();
        let good = crc32(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut bad = msg.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn linearity_bit_flip_delta() {
        // crc(m ^ mask_at_p) == crc(m) ^ bit_flip_delta(mask, tail).
        let msg = b"confidential payload under weak WEP".to_vec();
        let good = crc32(&msg);
        let pos = 5;
        let mask = [0x80u8, 0x01, 0xFF];
        let tail = msg.len() - pos - mask.len();
        let mut tampered = msg.clone();
        for (i, &m) in mask.iter().enumerate() {
            tampered[pos + i] ^= m;
        }
        assert_eq!(crc32(&tampered), good ^ bit_flip_delta(&mask, tail));
    }

    #[test]
    fn linearity_holds_for_every_position() {
        let msg: Vec<u8> = (0..32).collect();
        let good = crc32(&msg);
        let mask = [0xA5u8];
        for pos in 0..msg.len() {
            let mut t = msg.clone();
            t[pos] ^= mask[0];
            let delta = bit_flip_delta(&mask, msg.len() - pos - 1);
            assert_eq!(crc32(&t), good ^ delta, "pos {pos}");
        }
    }
}
