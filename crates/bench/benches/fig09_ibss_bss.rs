//! FIG-1.9 — regenerates the ad hoc vs infrastructure comparison and
//! times a full IBSS exchange.

use std::hint::black_box;

use wn_bench::{bench, print_figure, print_report};
use wn_core::scenarios::fig_1_9_ibss_vs_bss;
use wn_mac80211::addr::MacAddr;
use wn_mac80211::sim::MacConfig;
use wn_net80211::builder::{ibss_send, IbssBuilder};
use wn_phy::geom::Point;
use wn_phy::modulation::PhyStandard;
use wn_sim::SimTime;

fn main() {
    let (fig, report) = fig_1_9_ibss_vs_bss(42);
    print_figure(&fig);
    print_report(&report);

    bench("fig09/ibss_20_messages", || {
        let mut mac = MacConfig::new(PhyStandard::Dot11g);
        mac.seed = 5;
        let mut net = IbssBuilder::new(mac)
            .node(Point::new(0.0, 0.0))
            .node(Point::new(15.0, 0.0))
            .build();
        let a = net.ids[0];
        let sh = net.shared[0].clone();
        for k in 0..20 {
            ibss_send(
                &mut net.sim,
                a,
                &sh,
                MacAddr::station(1),
                vec![9; 800],
                SimTime::from_millis(1 + k * 3),
            );
        }
        net.sim.run_until(SimTime::from_secs(1));
        let delivered = net.shared[1]
            .lock()
            .expect("shared state lock")
            .delivered
            .len();
        black_box(delivered)
    });
}
