//! Link budgets, SINR and reception decisions.
//!
//! This module is where transmit power, antenna gains, path loss, the
//! thermal noise floor and co-channel interference meet to decide
//! whether a frame gets through and at what rate — the machinery behind
//! both the Fig. 1.13 rate-vs-distance experiment and the §6
//! interference experiment.

use crate::modulation::{PhyStandard, RateStep};
use crate::propagation::PathLoss;
use crate::units::{sum_powers, thermal_noise, DataRate, Db, Dbm, Hertz};

/// A radio's RF front-end parameters.
#[derive(Clone, Copy, Debug)]
pub struct Radio {
    /// Transmit power at the antenna port.
    pub tx_power: Dbm,
    /// Transmit antenna gain.
    pub tx_gain: Db,
    /// Receive antenna gain.
    pub rx_gain: Db,
    /// Receiver noise figure.
    pub noise_figure: Db,
}

impl Radio {
    /// A typical consumer Wi-Fi radio: 20 dBm, 2 dBi antennas, 7 dB NF.
    pub fn consumer_wifi() -> Self {
        Radio {
            tx_power: Dbm(20.0),
            tx_gain: Db(2.0),
            rx_gain: Db(2.0),
            noise_figure: Db(7.0),
        }
    }

    /// A low-power WPAN radio (Bluetooth class 2 / ZigBee): 0 dBm.
    pub fn wpan_low_power() -> Self {
        Radio {
            tx_power: Dbm(0.0),
            tx_gain: Db(0.0),
            rx_gain: Db(0.0),
            noise_figure: Db(9.0),
        }
    }

    /// A Bluetooth class 1 radio: 20 dBm.
    pub fn bluetooth_class1() -> Self {
        Radio {
            tx_power: Dbm(20.0),
            tx_gain: Db(0.0),
            rx_gain: Db(0.0),
            noise_figure: Db(9.0),
        }
    }

    /// A WiMAX base-station sector: 43 dBm EIRP-ish with 15 dBi antenna.
    pub fn wimax_base_station() -> Self {
        Radio {
            tx_power: Dbm(43.0),
            tx_gain: Db(15.0),
            rx_gain: Db(15.0),
            noise_figure: Db(5.0),
        }
    }
}

/// Received power over a link whose two ends use different radios:
/// the transmitter's power and antenna gain plus the receiver's
/// antenna gain, minus the path loss. [`LinkBudget::rx_power`] is the
/// symmetric-radio special case of this.
pub fn coupled_rx_power(tx: &Radio, rx: &Radio, path_loss: Db) -> Dbm {
    tx.tx_power + tx.tx_gain + rx.rx_gain - path_loss
}

/// A fully-specified link budget evaluator for one PHY.
#[derive(Clone, Copy, Debug)]
pub struct LinkBudget {
    /// Transmitter/receiver RF parameters.
    pub radio: Radio,
    /// Carrier frequency.
    pub frequency: Hertz,
    /// Receiver bandwidth (sets the noise floor).
    pub bandwidth: Hertz,
}

impl LinkBudget {
    /// Builds the standard budget for an 802.11 generation with the
    /// given radio.
    pub fn for_standard(std: PhyStandard, radio: Radio) -> Self {
        LinkBudget {
            radio,
            frequency: std.band().representative_frequency(),
            bandwidth: Hertz::from_mhz(std.bandwidth_mhz()),
        }
    }

    /// The receiver noise floor.
    pub fn noise_floor(&self) -> Dbm {
        thermal_noise(self.bandwidth, self.radio.noise_figure)
    }

    /// Received power over a path with the given loss.
    pub fn rx_power(&self, path_loss: Db) -> Dbm {
        self.radio.tx_power + self.radio.tx_gain + self.radio.rx_gain - path_loss
    }

    /// SNR over a path with the given loss (no interference).
    pub fn snr(&self, path_loss: Db) -> Db {
        self.rx_power(path_loss) - self.noise_floor()
    }

    /// SINR given the wanted path loss and the received powers of
    /// concurrent co-channel interferers.
    pub fn sinr(&self, path_loss: Db, interferers: &[Dbm]) -> Db {
        let signal = self.rx_power(path_loss);
        let noise = self.noise_floor();
        match sum_powers(interferers) {
            None => signal - noise,
            Some(i) => {
                let denom = sum_powers(&[noise, i]).expect("two terms");
                signal - denom
            }
        }
    }

    /// SNR at a distance under a propagation model.
    pub fn snr_at(&self, model: &dyn PathLoss, distance_m: f64) -> Db {
        self.snr(model.loss(distance_m, self.frequency))
    }

    /// The fastest rate of `std` sustainable at `distance_m` under
    /// `model`, or `None` when even the base rate's SNR is unmet.
    pub fn best_rate_at(
        &self,
        std: PhyStandard,
        model: &dyn PathLoss,
        distance_m: f64,
    ) -> Option<RateStep> {
        std.best_rate_for_snr(self.snr_at(model, distance_m))
    }

    /// Probability that a `bits`-bit frame at `step` survives the link
    /// at the given SINR (threshold-calibrated; see
    /// [`RateStep::success_prob`]).
    pub fn frame_success(&self, step: RateStep, sinr: Db, bits: u64) -> f64 {
        step.success_prob(sinr.value(), bits)
    }

    /// Maximum distance at which `rate` is sustainable, by bisection
    /// over the (monotone) path-loss model. Returns 0 if unreachable at
    /// one metre.
    pub fn max_range_for_rate(
        &self,
        std: PhyStandard,
        model: &dyn PathLoss,
        rate: DataRate,
        search_limit_m: f64,
    ) -> f64 {
        let Some(step) = std
            .rate_ladder()
            .into_iter()
            .find(|s| (s.rate.bps() - rate.bps()).abs() < 1.0)
        else {
            return 0.0;
        };
        let sustainable = |d: f64| self.snr_at(model, d).value() >= step.min_snr_db;
        if !sustainable(1.0) {
            return 0.0;
        }
        if sustainable(search_limit_m) {
            return search_limit_m;
        }
        let (mut lo, mut hi) = (1.0, search_limit_m);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if sustainable(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Whether a wanted frame *captures* the receiver despite a
    /// collision: true when SINR exceeds `capture_threshold_db`.
    ///
    /// The capture effect is a DESIGN.md ablation: with it off, any
    /// overlap destroys both frames; with it on, the stronger frame can
    /// survive — changing fairness between near and far stations.
    pub fn captures(&self, path_loss: Db, interferers: &[Dbm], capture_threshold_db: f64) -> bool {
        self.sinr(path_loss, interferers).value() >= capture_threshold_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::{FreeSpace, LogDistance};

    fn wifi_g() -> LinkBudget {
        LinkBudget::for_standard(PhyStandard::Dot11g, Radio::consumer_wifi())
    }

    #[test]
    fn noise_floor_20mhz() {
        let nf = wifi_g().noise_floor().value();
        assert!((nf - (-94.0)).abs() < 0.5, "{nf}");
    }

    #[test]
    fn rx_power_chain() {
        let lb = wifi_g();
        // 20 + 2 + 2 - 80 = -56 dBm.
        assert!((lb.rx_power(Db(80.0)).value() - (-56.0)).abs() < 1e-9);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let lb = wifi_g();
        let m = FreeSpace;
        let mut prev = f64::INFINITY;
        for d in [1.0, 10.0, 50.0, 100.0, 500.0] {
            let s = lb.snr_at(&m, d).value();
            assert!(s < prev);
            prev = s;
        }
    }

    #[test]
    fn sinr_with_interference_lower_than_snr() {
        let lb = wifi_g();
        let pl = Db(70.0);
        let snr = lb.sinr(pl, &[]);
        let sinr = lb.sinr(pl, &[Dbm(-70.0)]);
        assert!(sinr.value() < snr.value());
        // A dominating interferer at the same level as the signal drives
        // SINR to ~0 dB.
        let sig = lb.rx_power(pl);
        let jammed = lb.sinr(pl, &[sig]);
        assert!(jammed.value() < 0.5, "{jammed}");
    }

    #[test]
    fn rate_falls_back_with_distance_like_fig_1_13() {
        // "it will automatically back down from 54 Mbps when the radio
        // signal is weak" — the ladder must descend with distance.
        let lb = wifi_g();
        let m = LogDistance::indoor();
        let near = lb.best_rate_at(PhyStandard::Dot11g, &m, 5.0).unwrap();
        assert_eq!(near.rate.mbps(), 54.0);
        let mut last = f64::INFINITY;
        for d in [5.0, 15.0, 30.0, 60.0, 90.0] {
            if let Some(step) = lb.best_rate_at(PhyStandard::Dot11g, &m, d) {
                assert!(step.rate.mbps() <= last, "rate rose at {d} m");
                last = step.rate.mbps();
            }
        }
        // Far out, the link dies entirely.
        assert!(lb.best_rate_at(PhyStandard::Dot11g, &m, 10_000.0).is_none());
    }

    #[test]
    fn frame_success_monotone_in_sinr() {
        let lb = wifi_g();
        let step = PhyStandard::Dot11g.rate_ladder()[7];
        let lo = lb.frame_success(step, Db(20.0), 12_000);
        let hi = lb.frame_success(step, Db(35.0), 12_000);
        assert!(hi > lo);
        assert!(hi > 0.99, "{hi}");
    }

    #[test]
    fn max_range_ordering_across_rates() {
        // Faster rates reach less far (§4.3's entire premise).
        let lb = wifi_g();
        let m = LogDistance::indoor();
        let r54 = lb.max_range_for_rate(PhyStandard::Dot11g, &m, DataRate::from_mbps(54.0), 1e4);
        let r6 = lb.max_range_for_rate(PhyStandard::Dot11g, &m, DataRate::from_mbps(6.0), 1e4);
        assert!(r6 > r54, "r6={r6} r54={r54}");
        assert!(r54 > 5.0, "54 Mbps should work at close range: {r54}");
    }

    #[test]
    fn max_range_unknown_rate_is_zero() {
        let lb = wifi_g();
        let r = lb.max_range_for_rate(
            PhyStandard::Dot11g,
            &FreeSpace,
            DataRate::from_mbps(33.0),
            1e4,
        );
        assert_eq!(r, 0.0);
    }

    #[test]
    fn capture_effect_threshold() {
        let lb = wifi_g();
        let pl = Db(60.0);
        let weak_interferer = lb.rx_power(Db(85.0));
        assert!(lb.captures(pl, &[weak_interferer], 10.0));
        let strong_interferer = lb.rx_power(Db(58.0));
        assert!(!lb.captures(pl, &[strong_interferer], 10.0));
    }

    #[test]
    fn five_ghz_shorter_range_than_2_4() {
        // §4.3: 802.11a (5 GHz) trades range for a cleaner band.
        let g = wifi_g();
        let a = LinkBudget::for_standard(PhyStandard::Dot11a, Radio::consumer_wifi());
        let m = LogDistance::indoor();
        let rg = g.max_range_for_rate(PhyStandard::Dot11g, &m, DataRate::from_mbps(54.0), 1e4);
        let ra = a.max_range_for_rate(PhyStandard::Dot11a, &m, DataRate::from_mbps(54.0), 1e4);
        assert!(rg > ra, "g range {rg} should exceed a range {ra}");
    }
}
