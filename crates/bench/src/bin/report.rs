//! Regenerates `EXPERIMENTS.md`: runs every registered experiment
//! through the `wn-core` campaign runner and writes the paper-vs-
//! measured record.
//!
//! Run with: `cargo run -p wn-bench --bin report > EXPERIMENTS.md`
//!
//! Flags:
//! - `--threads N` — worker count for the campaign pool (default: the
//!   `WN_THREADS` env var, else the machine's parallelism). Output is
//!   byte-identical for every N.
//! - `--only <id>` — run a single experiment (repeatable); sections
//!   come out in registry order, without the file preamble.
//! - `--list` — print the experiment registry and exit.

use wn_core::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                i += 1;
                let id = args.get(i).unwrap_or_else(|| {
                    eprintln!("--only needs an experiment id (see --list)");
                    std::process::exit(2);
                });
                only.push(id.clone());
            }
            "--threads" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a count >= 1");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--list" => {
                for e in runner::experiments() {
                    println!("{:12} {}", e.id, e.title);
                }
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (supported: --only <id>, --threads N, --list)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let threads = threads.unwrap_or_else(wn_sim::worker_count);

    if only.is_empty() {
        print!("{}", runner::campaign_markdown(threads));
    } else {
        match runner::run_selected(threads, &only) {
            Ok(outputs) => {
                for o in outputs {
                    print!("{}", o.markdown);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}
