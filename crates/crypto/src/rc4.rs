//! The RC4 stream cipher.
//!
//! RC4 is the cipher inside both WEP and TKIP (§5.2). Its key schedule
//! (KSA) is famously weak for related keys — WEP prepends a public
//! 24-bit IV to the secret key, which is what the FMS-class attacks in
//! `wn-security` exploit.

/// RC4 keystream generator state.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl std::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print internal cipher state.
        f.debug_struct("Rc4").finish_non_exhaustive()
    }
}

impl Rc4 {
    /// Initialises RC4 with `key` via the key-scheduling algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the key is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "RC4 key length {} out of range 1..=256",
            key.len()
        );
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j: u8 = 0;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Returns the next keystream byte (PRGA step).
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let t = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[t as usize]
    }

    /// Fills `out` with keystream bytes.
    pub fn keystream(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_byte();
        }
    }

    /// Generates `n` keystream bytes.
    pub fn keystream_vec(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.keystream(&mut v);
        v
    }

    /// Encrypts/decrypts `data` in place (RC4 is an involution given the
    /// same key position).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }

    /// Convenience: one-shot encrypt/decrypt with a fresh state.
    pub fn cipher(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut rc4 = Rc4::new(key);
        let mut out = data.to_vec();
        rc4.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02X}")).collect()
    }

    #[test]
    fn vector_key_plaintext() {
        // Classic published RC4 vector.
        assert_eq!(
            hex(&Rc4::cipher(b"Key", b"Plaintext")),
            "BBF316E8D940AF0AD3"
        );
    }

    #[test]
    fn vector_wiki_pedia() {
        assert_eq!(hex(&Rc4::cipher(b"Wiki", b"pedia")), "1021BF0420");
    }

    #[test]
    fn vector_secret_attack() {
        assert_eq!(
            hex(&Rc4::cipher(b"Secret", b"Attack at dawn")),
            "45A01F645FC35B383552544B9BF5"
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = b"wep-key-40";
        let msg = b"association request from STA 02:00:00:00:00:07";
        let ct = Rc4::cipher(key, msg);
        assert_ne!(&ct[..], &msg[..]);
        let pt = Rc4::cipher(key, &ct);
        assert_eq!(&pt[..], &msg[..]);
    }

    #[test]
    fn same_key_same_keystream() {
        // The property WEP IV collisions expose: identical keys produce
        // identical keystream, so xor of two ciphertexts = xor of the
        // two plaintexts.
        let key = [0x01, 0x02, 0x03, 0xAA, 0xBB];
        let p1 = b"first secret message!";
        let p2 = b"second hidden payload";
        let c1 = Rc4::cipher(&key, p1);
        let c2 = Rc4::cipher(&key, p2);
        for i in 0..p1.len() {
            assert_eq!(c1[i] ^ c2[i], p1[i] ^ p2[i]);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Rc4::cipher(b"key-a", &[0u8; 64]);
        let b = Rc4::cipher(b"key-b", &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_vec_matches_apply() {
        let mut k1 = Rc4::new(b"stream");
        let ks = k1.keystream_vec(16);
        let mut k2 = Rc4::new(b"stream");
        let mut data = vec![0u8; 16];
        k2.apply(&mut data);
        assert_eq!(ks, data);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_key_panics() {
        let _ = Rc4::new(b"");
    }

    #[test]
    fn debug_hides_state() {
        let s = format!("{:?}", Rc4::new(b"secret"));
        assert!(!s.contains("secret"));
        assert!(s.contains(".."));
    }
}
