//! Greedy scenario shrinking.
//!
//! Given a failing scenario and a predicate that re-runs it, try a
//! fixed set of simplifications — halve station counts, traffic and
//! duration — keeping each one that still reproduces the violation,
//! until no candidate helps. Every candidate run is itself
//! deterministic, so the minimised scenario is a faithful repro.

use crate::scenario::{Scenario, ScenarioKind, ZigbeeTopology};

/// Upper bound on candidate re-runs per shrink, so a pathological
/// predicate cannot loop forever.
const MAX_RUNS: usize = 64;

/// Number of stations / devices / nodes / subscribers a scenario
/// creates — the headline size the shrinker tries to minimise.
pub fn station_count(sc: &Scenario) -> usize {
    match &sc.kind {
        ScenarioKind::Wlan(w) => w.total_stations(),
        ScenarioKind::Ess(e) => e.aps + e.sta_power_save.len(),
        ScenarioKind::Bluetooth(b) => b.device_count(),
        ScenarioKind::Zigbee(z) => z.topology.node_count(),
        ScenarioKind::Wman(w) => w.subs.len() + 1,
    }
}

/// Smaller variants of `sc`, most aggressive first. Each changes one
/// axis; the greedy loop composes them.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |kind: ScenarioKind| {
        out.push(Scenario {
            seed: sc.seed,
            kind,
        })
    };
    match &sc.kind {
        ScenarioKind::Wlan(w) => {
            if w.obss_cell {
                let mut c = w.clone();
                c.obss_cell = false;
                push(ScenarioKind::Wlan(c));
            }
            if w.stations > 2 {
                let mut c = w.clone();
                c.stations = (c.stations / 2).max(2);
                push(ScenarioKind::Wlan(c));
            }
            if w.frames_per_sender > 1 {
                let mut c = w.clone();
                c.frames_per_sender = (c.frames_per_sender / 2).max(1);
                push(ScenarioKind::Wlan(c));
            }
            if w.ampdu_max_mpdus > 1 {
                let mut c = w.clone();
                c.ampdu_max_mpdus = (c.ampdu_max_mpdus / 2).max(1);
                push(ScenarioKind::Wlan(c));
            }
            if w.ampdu_per_mpdu_loss > 0.0 {
                let mut c = w.clone();
                c.ampdu_per_mpdu_loss = 0.0;
                push(ScenarioKind::Wlan(c));
            }
            if w.duration_ms > 10 {
                let mut c = w.clone();
                c.duration_ms = (c.duration_ms / 2).max(10);
                push(ScenarioKind::Wlan(c));
            }
        }
        ScenarioKind::Ess(e) => {
            if e.sta_power_save.len() > 1 {
                let mut c = e.clone();
                let keep = (c.sta_power_save.len() / 2).max(1);
                c.sta_power_save.truncate(keep);
                push(ScenarioKind::Ess(c));
            }
            if e.walker {
                let mut c = e.clone();
                c.walker = false;
                push(ScenarioKind::Ess(c));
            }
            if e.duration_s > 2 {
                let mut c = e.clone();
                c.duration_s = (c.duration_s / 2).max(2);
                push(ScenarioKind::Ess(c));
            }
        }
        ScenarioKind::Bluetooth(b) => {
            if b.slaves_a > 1 || b.slaves_b > 1 {
                let mut c = b.clone();
                c.slaves_a = (c.slaves_a / 2).max(1);
                if c.scatternet {
                    c.slaves_b = (c.slaves_b / 2).max(1);
                }
                let n = c.device_count();
                c.transfers.retain(|&(s, d, _)| s < n && d < n);
                push(ScenarioKind::Bluetooth(c));
            }
            if b.transfers.len() > 1 {
                let mut c = b.clone();
                let keep = (c.transfers.len() / 2).max(1);
                c.transfers.truncate(keep);
                push(ScenarioKind::Bluetooth(c));
            }
            if b.duration_ms > 100 {
                let mut c = b.clone();
                c.duration_ms = (c.duration_ms / 2).max(100);
                push(ScenarioKind::Bluetooth(c));
            }
        }
        ScenarioKind::Zigbee(z) => {
            match z.topology {
                ZigbeeTopology::Star { n, radius_m } if n > 2 => {
                    let mut c = z.clone();
                    c.topology = ZigbeeTopology::Star {
                        n: (n / 2).max(2),
                        radius_m,
                    };
                    let nodes = c.topology.node_count();
                    c.sends.retain(|&(s, d, _, _)| s < nodes && d < nodes);
                    push(ScenarioKind::Zigbee(c));
                }
                ZigbeeTopology::Mesh {
                    cols,
                    rows,
                    spacing_m,
                } if cols * rows > 4 => {
                    let mut c = z.clone();
                    c.topology = ZigbeeTopology::Mesh {
                        cols: (cols / 2).max(2),
                        rows: (rows / 2).max(2),
                        spacing_m,
                    };
                    let nodes = c.topology.node_count();
                    c.sends.retain(|&(s, d, _, _)| s < nodes && d < nodes);
                    push(ScenarioKind::Zigbee(c));
                }
                _ => {}
            }
            if z.sends.len() > 1 {
                let mut c = z.clone();
                let keep = (c.sends.len() / 2).max(1);
                c.sends.truncate(keep);
                push(ScenarioKind::Zigbee(c));
            }
            if z.duration_ms > 200 {
                let mut c = z.clone();
                c.duration_ms = (c.duration_ms / 2).max(200);
                push(ScenarioKind::Zigbee(c));
            }
        }
        ScenarioKind::Wman(w) => {
            if w.subs.len() > 1 {
                let mut c = w.clone();
                let keep = (c.subs.len() / 2).max(1);
                c.subs.truncate(keep);
                push(ScenarioKind::Wman(c));
            }
            if w.duration_ms > 100 {
                let mut c = w.clone();
                c.duration_ms = (c.duration_ms / 2).max(100);
                push(ScenarioKind::Wman(c));
            }
        }
    }
    out
}

/// Minimises `sc` under `still_fails` (which must return `true` for
/// `sc` itself, i.e. be handed an already-failing scenario). Greedy
/// to a fixpoint: repeatedly take the first candidate that still
/// fails, stop when none does or the run budget is spent.
pub fn shrink(sc: &Scenario, still_fails: impl Fn(&Scenario) -> bool) -> Scenario {
    let mut best = sc.clone();
    let mut runs = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if runs >= MAX_RUNS {
                return best;
            }
            runs += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioGen, WlanScenario};

    fn wlan(stations: usize, frames: u32, duration_ms: u64) -> Scenario {
        Scenario {
            seed: 7,
            kind: ScenarioKind::Wlan(WlanScenario {
                stations,
                radius_m: 10.0,
                standard: wn_phy::modulation::PhyStandard::Dot11b,
                payload: 400,
                frames_per_sender: frames,
                interval_us: 1_000,
                duration_ms,
                rts_threshold: usize::MAX,
                frag_threshold: usize::MAX,
                queue_limit: 32,
                retry_limit_short: 7,
                retry_limit_long: 4,
                cw_min_override: None,
                cw_max_override: None,
                arf: false,
                deaf_sink: true,
                failpoint_retry_overrun: true,
                edca: false,
                ampdu_max_mpdus: 16,
                ampdu_per_mpdu_loss: 0.0,
                failpoint_aifsn_swap: false,
                obss_cell: false,
            }),
        }
    }

    #[test]
    fn shrinks_to_floor_when_everything_fails() {
        let sc = wlan(16, 32, 160);
        let min = shrink(&sc, |_| true);
        match min.kind {
            ScenarioKind::Wlan(ref w) => {
                assert_eq!(w.stations, 2);
                assert_eq!(w.frames_per_sender, 1);
                assert_eq!(w.duration_ms, 10);
            }
            _ => panic!("kind changed"),
        }
    }

    #[test]
    fn keeps_original_when_no_candidate_fails() {
        let sc = wlan(16, 32, 160);
        let min = shrink(&sc, |c| match c.kind {
            ScenarioKind::Wlan(ref w) => w.stations == 16,
            _ => false,
        });
        assert_eq!(station_count(&min), 16);
    }

    #[test]
    fn shrink_respects_lower_bound_preserving_predicate() {
        // Violation needs at least 6 stations: the shrinker must stop
        // at the smallest still-failing size, not the global floor.
        let sc = wlan(16, 8, 80);
        let min = shrink(&sc, |c| station_count(c) >= 6);
        let n = station_count(&min);
        assert!((6..=8).contains(&n), "stopped at {n}");
    }

    #[test]
    fn station_count_covers_every_kind() {
        let g = ScenarioGen::default();
        for seed in 0..200 {
            assert!(station_count(&g.scenario(seed)) >= 2);
        }
    }
}
