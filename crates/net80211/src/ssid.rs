//! Service set identifiers.
//!
//! §3.2: "A service set identification (SSID) is a 32-character
//! (maximum) alphanumeric key identifying the name of the wireless
//! local area network. … all devices must be configured with the same
//! SSID."

use std::fmt;

/// A validated SSID ("network name").
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ssid(String);

/// Errors constructing an [`Ssid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsidError {
    /// Longer than the 32-character maximum.
    TooLong(usize),
    /// Empty SSIDs cannot be used to name a network.
    Empty,
}

impl fmt::Display for SsidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsidError::TooLong(n) => write!(f, "SSID of {n} bytes exceeds the 32-byte maximum"),
            SsidError::Empty => write!(f, "SSID must not be empty"),
        }
    }
}

impl std::error::Error for SsidError {}

impl Ssid {
    /// Creates an SSID, enforcing the 1–32 byte rule.
    pub fn new(name: impl Into<String>) -> Result<Self, SsidError> {
        let name = name.into();
        if name.is_empty() {
            return Err(SsidError::Empty);
        }
        if name.len() > 32 {
            return Err(SsidError::TooLong(name.len()));
        }
        Ok(Ssid(name))
    }

    /// The SSID string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Raw bytes as carried in the SSID information element.
    pub fn bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

impl fmt::Debug for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ssid({:?})", self.0)
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normal_names() {
        assert_eq!(Ssid::new("HomeNet").unwrap().as_str(), "HomeNet");
        assert!(Ssid::new("a").is_ok());
        assert!(Ssid::new("x".repeat(32)).is_ok());
    }

    #[test]
    fn rejects_out_of_spec() {
        assert_eq!(Ssid::new(""), Err(SsidError::Empty));
        assert_eq!(Ssid::new("x".repeat(33)), Err(SsidError::TooLong(33)));
    }

    #[test]
    fn equality_is_exact() {
        // "all devices must be configured with the same SSID" — matching
        // is byte-exact, case included.
        assert_ne!(Ssid::new("HomeNet").unwrap(), Ssid::new("homenet").unwrap());
    }
}
