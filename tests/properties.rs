//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use wireless_networks::crypto::ccm;
use wireless_networks::crypto::crc32::{bit_flip_delta, crc32};
use wireless_networks::crypto::tkip::{per_packet_key, Tsc};
use wireless_networks::crypto::{Aes, Rc4};
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::frame::{DsBits, Frame, FrameControl, SequenceControl, Subtype};
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::{frame_error_rate, PhyStandard};
use wireless_networks::phy::propagation::{FreeSpace, LogDistance, PathLoss};
use wireless_networks::phy::units::{Db, Dbm, Hertz};
use wireless_networks::security::wep;
use wireless_networks::sim::{SimDuration, SimTime};
use wireless_networks::wwan::cellular::{erlang_b_blocking, CellGrid};

proptest! {
    // ---- crypto ----

    #[test]
    fn crc_linearity_holds_everywhere(
        msg in proptest::collection::vec(any::<u8>(), 1..200),
        mask in proptest::collection::vec(any::<u8>(), 1..8),
        pos_seed in any::<usize>()
    ) {
        prop_assume!(mask.len() <= msg.len());
        let pos = pos_seed % (msg.len() - mask.len() + 1);
        let mut tampered = msg.clone();
        for (i, &m) in mask.iter().enumerate() {
            tampered[pos + i] ^= m;
        }
        let delta = bit_flip_delta(&mask, msg.len() - pos - mask.len());
        prop_assert_eq!(crc32(&tampered), crc32(&msg) ^ delta);
    }

    #[test]
    fn rc4_is_an_involution(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        data in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let ct = Rc4::cipher(&key, &data);
        prop_assert_eq!(Rc4::cipher(&key, &ct), data);
    }

    #[test]
    fn aes_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn ccm_roundtrip_and_tamper(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 13]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<(usize, u8)>()
    ) {
        let aes = Aes::new(&key);
        let ct = ccm::encrypt(&aes, &nonce, &aad, &payload);
        prop_assert_eq!(ccm::decrypt(&aes, &nonce, &aad, &ct).unwrap(), payload);
        // Any nonzero flip anywhere must be rejected.
        let (pos, bits) = flip;
        if bits != 0 {
            let mut bad = ct.clone();
            let p = pos % bad.len();
            bad[p] ^= bits;
            prop_assert!(ccm::decrypt(&aes, &nonce, &aad, &bad).is_err());
        }
    }

    #[test]
    fn tkip_keys_never_collide_for_distinct_tsc(
        tk in any::<[u8; 16]>(),
        ta in any::<[u8; 6]>(),
        a in 0u64..0xFFFF_FFFF_FFFF,
        b in 0u64..0xFFFF_FFFF_FFFF
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(per_packet_key(&tk, &ta, Tsc(a)), per_packet_key(&tk, &ta, Tsc(b)));
    }

    #[test]
    fn wep_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        iv in any::<[u8; 3]>(),
        key in any::<[u8; 13]>()
    ) {
        let key = wep::WepKey::new(&key).unwrap();
        let frame = wep::encrypt(&key, iv, &payload);
        prop_assert_eq!(wep::decrypt(&key, &frame).unwrap(), payload);
    }

    // ---- MAC frame codec ----

    #[test]
    fn data_frame_codec_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        seq in 0u16..4096,
        frag in 0u8..16,
        da in any::<u32>(),
        sa in any::<u32>(),
        flags in any::<[bool; 6]>()
    ) {
        let mut f = Frame::data(
            DsBits::ToAp,
            MacAddr::station(da),
            MacAddr::station(sa),
            MacAddr::access_point(1),
            SequenceControl { sequence: seq, fragment: frag },
            payload,
        );
        f.fc.retry = flags[0];
        f.fc.more_fragments = flags[1];
        f.fc.power_management = flags[2];
        f.fc.more_data = flags[3];
        f.fc.protected = flags[4];
        f.fc.order = flags[5];
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn frame_control_pack_unpack_total(v in any::<u16>()) {
        // Either it parses (and repacks identically) or it is rejected;
        // never a panic.
        if let Ok(fc) = FrameControl::unpack(v) {
            prop_assert_eq!(fc.pack(), v);
        }
    }

    #[test]
    fn corrupting_any_bit_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        byte_seed in any::<usize>(),
        bit in 0u8..8
    ) {
        let f = Frame::data(
            DsBits::Ibss,
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            payload,
        );
        let mut wire = f.to_bytes();
        let pos = byte_seed % wire.len();
        wire[pos] ^= 1 << bit;
        // Single-bit corruption can never yield the same frame back.
        match Frame::from_bytes(&wire) {
            Ok(parsed) => prop_assert_ne!(parsed, f),
            Err(_) => {}
        }
    }

    #[test]
    fn frame_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary byte soup must parse to Ok or Err, never panic —
        // the receiver runs this on every corrupted capture.
        let _ = Frame::from_bytes(&bytes);
    }

    #[test]
    fn control_frames_roundtrip(duration in 0u16..0x8000, ra in any::<u32>(), ta in any::<u32>()) {
        let rts = Frame::rts(MacAddr::station(ra), MacAddr::station(ta), duration);
        prop_assert_eq!(Frame::from_bytes(&rts.to_bytes()).unwrap(), rts);
        let cts = Frame::cts(MacAddr::station(ra), duration);
        prop_assert_eq!(Frame::from_bytes(&cts.to_bytes()).unwrap(), cts);
        let ack = Frame::ack(MacAddr::station(ra));
        prop_assert_eq!(Frame::from_bytes(&ack.to_bytes()).unwrap(), ack);
    }

    #[test]
    fn ps_poll_aid_roundtrip(aid in 0u16..0x3FFF, bssid in any::<u32>(), ta in any::<u32>()) {
        let poll = Frame::ps_poll(MacAddr::access_point(bssid), MacAddr::station(ta), aid);
        let back = Frame::from_bytes(&poll.to_bytes()).unwrap();
        prop_assert_eq!(back.ps_poll_aid(), Some(aid));
        prop_assert_eq!(back.fc.subtype, Subtype::PsPoll);
    }

    // ---- phy ----

    #[test]
    fn path_loss_monotone(d1 in 1.0f64..10_000.0, d2 in 1.0f64..10_000.0) {
        prop_assume!(d1 < d2);
        let f = Hertz::from_ghz(2.4);
        prop_assert!(FreeSpace.loss(d1, f).value() <= FreeSpace.loss(d2, f).value());
        let m = LogDistance::indoor();
        prop_assert!(m.loss(d1, f).value() <= m.loss(d2, f).value());
    }

    #[test]
    fn fer_monotone_in_length(ber in 1e-9f64..1e-2, l1 in 1u64..10_000, l2 in 1u64..10_000) {
        prop_assume!(l1 < l2);
        prop_assert!(frame_error_rate(ber, l1) <= frame_error_rate(ber, l2) + 1e-15);
    }

    #[test]
    fn best_rate_monotone_in_snr(snr1 in -10.0f64..45.0, snr2 in -10.0f64..45.0) {
        prop_assume!(snr1 < snr2);
        for std in PhyStandard::ALL {
            let r1 = std.best_rate_for_snr(Db(snr1)).map(|s| s.rate.bps()).unwrap_or(0.0);
            let r2 = std.best_rate_for_snr(Db(snr2)).map(|s| s.rate.bps()).unwrap_or(0.0);
            prop_assert!(r1 <= r2);
        }
    }

    #[test]
    fn dbm_roundtrip(v in -120.0f64..40.0) {
        let mw = Dbm(v).to_milliwatts();
        prop_assert!((Dbm::from_milliwatts(mw).value() - v).abs() < 1e-9);
    }

    // ---- sim time ----

    #[test]
    fn sim_time_add_sub_inverse(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
    }

    // ---- wwan ----

    #[test]
    fn serving_cell_is_nearest_site(x in -10_000.0f64..10_000.0, y in -10_000.0f64..10_000.0) {
        let grid = CellGrid::hex(2, 1200.0);
        let p = Point::new(x, y);
        let chosen = grid.serving_cell(p);
        let chosen_d = grid.sites()[chosen].distance_to(p);
        for s in grid.sites() {
            prop_assert!(chosen_d <= s.distance_to(p) + 1e-9);
        }
    }

    #[test]
    fn erlang_b_monotone(channels in 1u32..60, e1 in 0.1f64..100.0, e2 in 0.1f64..100.0) {
        prop_assume!(e1 < e2);
        // More offered traffic → more blocking; more channels → less.
        prop_assert!(erlang_b_blocking(channels, e1) <= erlang_b_blocking(channels, e2) + 1e-12);
        prop_assert!(
            erlang_b_blocking(channels + 1, e1) <= erlang_b_blocking(channels, e1) + 1e-12
        );
    }
}
