//! FIG-1.5 — regenerates the UWB PSD/rate data; times the spectral and
//! BER models.

use criterion::{black_box, Criterion};
use wn_bench::{criterion_fast, print_figure, print_report};
use wn_core::scenarios::fig_1_5_uwb;
use wn_phy::units::Db;
use wn_wpan::uwb::{ppm_ber, rate_at_distance, transfer_time_s};

fn bench(c: &mut Criterion) {
    let (fig, report) = fig_1_5_uwb();
    print_figure(&fig);
    print_report(&report);

    c.bench_function("fig05/rate_and_ber_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..200 {
                let d = i as f64 * 0.06;
                if let Some(r) = rate_at_distance(d) {
                    acc += r.bps();
                }
                acc += ppm_ber(Db(i as f64 * 0.2));
                if let Some(t) = transfer_time_s(d, 1_000_000) {
                    acc += t;
                }
            }
            black_box(acc)
        })
    });
}

fn main() {
    let mut c = criterion_fast();
    bench(&mut c);
    c.final_summary();
}
