//! Property-based tests over the core data structures and invariants.
//!
//! These are randomised but fully deterministic: every property draws
//! its cases from the workspace's own seeded [`Rng`], so a failure
//! reproduces bit-for-bit on any machine with no external test-harness
//! dependency.

use wireless_networks::crypto::ccm;
use wireless_networks::crypto::crc32::{bit_flip_delta, crc32};
use wireless_networks::crypto::tkip::{per_packet_key, Tsc};
use wireless_networks::crypto::{Aes, Rc4};
use wireless_networks::mac80211::addr::MacAddr;
use wireless_networks::mac80211::frame::{DsBits, Frame, FrameControl, SequenceControl, Subtype};
use wireless_networks::phy::geom::Point;
use wireless_networks::phy::modulation::{frame_error_rate, PhyStandard};
use wireless_networks::phy::propagation::{FreeSpace, LogDistance, PathLoss};
use wireless_networks::phy::units::{Db, Dbm, Hertz};
use wireless_networks::security::wep;
use wireless_networks::sim::{event_key, key_time, Rng};
use wireless_networks::sim::{Scheduler, SimDuration, SimTime, Simulation, World};
use wireless_networks::wwan::cellular::{erlang_b_blocking, CellGrid};

fn bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn arr<const N: usize>(rng: &mut Rng) -> [u8; N] {
    let mut out = [0u8; N];
    for b in &mut out {
        *b = rng.next_u64() as u8;
    }
    out
}

/// Random bytes, length drawn uniformly from `0..max_excl`.
fn vec_up_to(rng: &mut Rng, max_excl: u64) -> Vec<u8> {
    let n = rng.below(max_excl) as usize;
    bytes(rng, n)
}

/// Random bytes, length drawn uniformly from `lo..=hi`.
fn vec_len_range(rng: &mut Rng, lo: u64, hi: u64) -> Vec<u8> {
    let n = rng.range_inclusive(lo, hi) as usize;
    bytes(rng, n)
}

// ---- crypto ----

#[test]
fn crc_linearity_holds_everywhere() {
    let mut rng = Rng::new(0xC4C_0001);
    for _ in 0..300 {
        let msg = vec_len_range(&mut rng, 1, 199);
        let mask = vec_len_range(&mut rng, 1, 7u64.min(msg.len() as u64));
        let pos = rng.below((msg.len() - mask.len() + 1) as u64) as usize;
        let mut tampered = msg.clone();
        for (i, &m) in mask.iter().enumerate() {
            tampered[pos + i] ^= m;
        }
        let delta = bit_flip_delta(&mask, msg.len() - pos - mask.len());
        assert_eq!(crc32(&tampered), crc32(&msg) ^ delta);
    }
}

#[test]
fn rc4_is_an_involution() {
    let mut rng = Rng::new(0xC4C_0002);
    for _ in 0..200 {
        let key = vec_len_range(&mut rng, 1, 63);
        let data = vec_up_to(&mut rng, 512);
        let ct = Rc4::cipher(&key, &data);
        assert_eq!(Rc4::cipher(&key, &ct), data);
    }
}

#[test]
fn aes_roundtrip() {
    let mut rng = Rng::new(0xC4C_0003);
    for _ in 0..200 {
        let key: [u8; 16] = arr(&mut rng);
        let block: [u8; 16] = arr(&mut rng);
        let aes = Aes::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        assert_eq!(b, block);
    }
}

#[test]
fn ccm_roundtrip_and_tamper() {
    let mut rng = Rng::new(0xC4C_0004);
    for _ in 0..100 {
        let key: [u8; 16] = arr(&mut rng);
        let nonce: [u8; 13] = arr(&mut rng);
        let aad = vec_up_to(&mut rng, 32);
        let payload = vec_up_to(&mut rng, 256);
        let aes = Aes::new(&key);
        let ct = ccm::encrypt(&aes, &nonce, &aad, &payload);
        assert_eq!(ccm::decrypt(&aes, &nonce, &aad, &ct).unwrap(), payload);
        // Any nonzero flip anywhere must be rejected.
        let bits = rng.range_inclusive(1, 255) as u8;
        let mut bad = ct.clone();
        let p = rng.below(bad.len() as u64) as usize;
        bad[p] ^= bits;
        assert!(ccm::decrypt(&aes, &nonce, &aad, &bad).is_err());
    }
}

#[test]
fn tkip_keys_never_collide_for_distinct_tsc() {
    let mut rng = Rng::new(0xC4C_0005);
    for _ in 0..200 {
        let tk: [u8; 16] = arr(&mut rng);
        let ta: [u8; 6] = arr(&mut rng);
        let a = rng.below(0xFFFF_FFFF_FFFF);
        let b = rng.below(0xFFFF_FFFF_FFFF);
        if a == b {
            continue;
        }
        assert_ne!(
            per_packet_key(&tk, &ta, Tsc(a)),
            per_packet_key(&tk, &ta, Tsc(b))
        );
    }
}

#[test]
fn wep_roundtrip() {
    let mut rng = Rng::new(0xC4C_0006);
    for _ in 0..150 {
        let payload = vec_up_to(&mut rng, 512);
        let iv: [u8; 3] = arr(&mut rng);
        let key: [u8; 13] = arr(&mut rng);
        let key = wep::WepKey::new(&key).unwrap();
        let frame = wep::encrypt(&key, iv, &payload);
        assert_eq!(wep::decrypt(&key, &frame).unwrap(), payload);
    }
}

// ---- MAC frame codec ----

#[test]
fn data_frame_codec_roundtrip() {
    let mut rng = Rng::new(0xC4C_0007);
    for _ in 0..200 {
        let payload = vec_up_to(&mut rng, 512);
        let mut f = Frame::data(
            DsBits::ToAp,
            MacAddr::station(rng.next_u32()),
            MacAddr::station(rng.next_u32()),
            MacAddr::access_point(1),
            SequenceControl {
                sequence: rng.below(4096) as u16,
                fragment: rng.below(16) as u8,
            },
            payload,
        );
        f.fc.retry = rng.chance(0.5);
        f.fc.more_fragments = rng.chance(0.5);
        f.fc.power_management = rng.chance(0.5);
        f.fc.more_data = rng.chance(0.5);
        f.fc.protected = rng.chance(0.5);
        f.fc.order = rng.chance(0.5);
        let back = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }
}

#[test]
fn write_into_matches_to_bytes_for_random_frames() {
    // The reusable-buffer serialiser must agree with `to_bytes` even
    // when appending after existing content.
    let mut rng = Rng::new(0xC4C_0107);
    let mut buf = Vec::new();
    for _ in 0..200 {
        let payload = vec_up_to(&mut rng, 256);
        let f = Frame::data(
            DsBits::Ibss,
            MacAddr::station(rng.next_u32()),
            MacAddr::station(rng.next_u32()),
            MacAddr::random_ibss_bssid(1),
            SequenceControl {
                sequence: rng.below(4096) as u16,
                fragment: rng.below(16) as u8,
            },
            payload,
        );
        let prefix_len = rng.below(16) as usize;
        buf.clear();
        buf.extend(std::iter::repeat_n(0xEE, prefix_len));
        f.write_into(&mut buf);
        assert_eq!(&buf[prefix_len..], f.to_bytes().as_slice());
    }
}

#[test]
fn frame_control_pack_unpack_total() {
    // Either it parses (and repacks identically) or it is rejected;
    // never a panic. The space is only 2^16 — sweep it all.
    for v in 0..=u16::MAX {
        if let Ok(fc) = FrameControl::unpack(v) {
            assert_eq!(fc.pack(), v);
        }
    }
}

#[test]
fn corrupting_any_bit_is_detected() {
    let mut rng = Rng::new(0xC4C_0008);
    for _ in 0..200 {
        let payload = vec_len_range(&mut rng, 1, 127);
        let f = Frame::data(
            DsBits::Ibss,
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::random_ibss_bssid(1),
            SequenceControl::default(),
            payload,
        );
        let mut wire = f.to_bytes();
        let pos = rng.below(wire.len() as u64) as usize;
        wire[pos] ^= 1 << rng.below(8);
        // Single-bit corruption can never yield the same frame back.
        if let Ok(parsed) = Frame::from_bytes(&wire) {
            assert_ne!(parsed, f);
        }
    }
}

#[test]
fn frame_parser_never_panics_on_garbage() {
    // Arbitrary byte soup must parse to Ok or Err, never panic —
    // the receiver runs this on every corrupted capture.
    let mut rng = Rng::new(0xC4C_0009);
    for _ in 0..400 {
        let soup = vec_up_to(&mut rng, 256);
        let _ = Frame::from_bytes(&soup);
    }
}

#[test]
fn control_frames_roundtrip() {
    let mut rng = Rng::new(0xC4C_000A);
    for _ in 0..200 {
        let duration = rng.below(0x8000) as u16;
        let ra = rng.next_u32();
        let ta = rng.next_u32();
        let rts = Frame::rts(MacAddr::station(ra), MacAddr::station(ta), duration);
        assert_eq!(Frame::from_bytes(&rts.to_bytes()).unwrap(), rts);
        let cts = Frame::cts(MacAddr::station(ra), duration);
        assert_eq!(Frame::from_bytes(&cts.to_bytes()).unwrap(), cts);
        let ack = Frame::ack(MacAddr::station(ra));
        assert_eq!(Frame::from_bytes(&ack.to_bytes()).unwrap(), ack);
    }
}

#[test]
fn ps_poll_aid_roundtrip() {
    let mut rng = Rng::new(0xC4C_000B);
    for _ in 0..200 {
        let aid = rng.below(0x3FFF) as u16;
        let poll = Frame::ps_poll(
            MacAddr::access_point(rng.next_u32()),
            MacAddr::station(rng.next_u32()),
            aid,
        );
        let back = Frame::from_bytes(&poll.to_bytes()).unwrap();
        assert_eq!(back.ps_poll_aid(), Some(aid));
        assert_eq!(back.fc.subtype, Subtype::PsPoll);
    }
}

// ---- phy ----

#[test]
fn path_loss_monotone() {
    let mut rng = Rng::new(0xC4C_000C);
    let f = Hertz::from_ghz(2.4);
    let m = LogDistance::indoor();
    for _ in 0..300 {
        let a = rng.f64_range(1.0, 10_000.0);
        let b = rng.f64_range(1.0, 10_000.0);
        let (d1, d2) = if a < b { (a, b) } else { (b, a) };
        assert!(FreeSpace.loss(d1, f).value() <= FreeSpace.loss(d2, f).value());
        assert!(m.loss(d1, f).value() <= m.loss(d2, f).value());
    }
}

#[test]
fn fer_monotone_in_length() {
    let mut rng = Rng::new(0xC4C_000D);
    for _ in 0..300 {
        let ber = rng.f64_range(1e-9, 1e-2);
        let a = rng.range_inclusive(1, 10_000);
        let b = rng.range_inclusive(1, 10_000);
        let (l1, l2) = if a < b { (a, b) } else { (b, a) };
        assert!(frame_error_rate(ber, l1) <= frame_error_rate(ber, l2) + 1e-15);
    }
}

#[test]
fn best_rate_monotone_in_snr() {
    let mut rng = Rng::new(0xC4C_000E);
    for _ in 0..100 {
        let a = rng.f64_range(-10.0, 45.0);
        let b = rng.f64_range(-10.0, 45.0);
        let (snr1, snr2) = if a < b { (a, b) } else { (b, a) };
        for std in PhyStandard::ALL {
            let r1 = std
                .best_rate_for_snr(Db(snr1))
                .map(|s| s.rate.bps())
                .unwrap_or(0.0);
            let r2 = std
                .best_rate_for_snr(Db(snr2))
                .map(|s| s.rate.bps())
                .unwrap_or(0.0);
            assert!(r1 <= r2);
        }
    }
}

#[test]
fn dbm_roundtrip() {
    let mut rng = Rng::new(0xC4C_000F);
    for _ in 0..300 {
        let v = rng.f64_range(-120.0, 40.0);
        let mw = Dbm(v).to_milliwatts();
        assert!((Dbm::from_milliwatts(mw).value() - v).abs() < 1e-9);
    }
}

// ---- sim time and the packed event key ----

#[test]
fn sim_time_add_sub_inverse() {
    let mut rng = Rng::new(0xC4C_0010);
    for _ in 0..300 {
        let t = SimTime::from_nanos(rng.below(u64::MAX / 4));
        let dur = SimDuration::from_nanos(rng.below(u64::MAX / 4));
        assert_eq!((t + dur) - dur, t);
        assert_eq!((t + dur) - t, dur);
    }
}

#[test]
fn event_key_orders_exactly_like_the_tuple() {
    // The scheduler packs (time, seq) into one u128 so the heap does a
    // single integer compare; the packed order must match the
    // lexicographic tuple order everywhere, ties included.
    let mut rng = Rng::new(0xC4C_0011);
    let sample = |rng: &mut Rng| -> (u64, u64) {
        // Mix small values and extremes so ties and carries both occur.
        let t = match rng.below(4) {
            0 => rng.below(4),
            1 => rng.next_u64(),
            2 => u64::MAX - rng.below(4),
            _ => rng.below(1 << 32),
        };
        let s = match rng.below(3) {
            0 => rng.below(4),
            1 => rng.next_u64(),
            _ => u64::MAX - rng.below(4),
        };
        (t, s)
    };
    for _ in 0..2000 {
        let (t1, s1) = sample(&mut rng);
        let (t2, s2) = sample(&mut rng);
        let packed =
            event_key(SimTime::from_nanos(t1), s1).cmp(&event_key(SimTime::from_nanos(t2), s2));
        let tuple = (t1, s1).cmp(&(t2, s2));
        assert_eq!(packed, tuple, "({t1},{s1}) vs ({t2},{s2})");
    }
}

#[test]
fn event_key_roundtrips_the_timestamp() {
    let mut rng = Rng::new(0xC4C_0012);
    for _ in 0..300 {
        let t = SimTime::from_nanos(rng.next_u64());
        assert_eq!(key_time(event_key(t, rng.next_u64())), t);
    }
}

#[test]
fn same_instant_events_pop_in_fifo_order() {
    // Randomised schedule with heavy timestamp collisions: the engine
    // must process ties in exactly the order they were scheduled.
    struct Collect {
        seen: Vec<u32>,
    }
    enum Ev {
        Tag(u32),
    }
    impl World for Collect {
        type Event = Ev;
        fn handle(&mut self, _now: SimTime, ev: Ev, _sched: &mut Scheduler<Ev>) {
            let Ev::Tag(tag) = ev;
            self.seen.push(tag);
        }
    }
    let mut rng = Rng::new(0xC4C_0013);
    for _ in 0..50 {
        let mut sim = Simulation::new(Collect { seen: Vec::new() });
        // Only 8 distinct instants for 100 events — plenty of ties.
        let mut expected: Vec<(u64, u32)> = Vec::new();
        for tag in 0..100u32 {
            let at = rng.below(8) * 1000;
            sim.scheduler_mut()
                .schedule_at(SimTime::from_nanos(at), Ev::Tag(tag));
            expected.push((at, tag));
        }
        expected.sort_by_key(|&(at, _)| at); // stable: ties keep schedule order
        sim.run();
        let want: Vec<u32> = expected.into_iter().map(|(_, tag)| tag).collect();
        assert_eq!(sim.world().seen, want);
    }
}

// ---- wwan ----

#[test]
fn serving_cell_is_nearest_site() {
    let mut rng = Rng::new(0xC4C_0014);
    let grid = CellGrid::hex(2, 1200.0);
    for _ in 0..300 {
        let p = Point::new(
            rng.f64_range(-10_000.0, 10_000.0),
            rng.f64_range(-10_000.0, 10_000.0),
        );
        let chosen = grid.serving_cell(p);
        let chosen_d = grid.sites()[chosen].distance_to(p);
        for s in grid.sites() {
            assert!(chosen_d <= s.distance_to(p) + 1e-9);
        }
    }
}

#[test]
fn erlang_b_monotone() {
    let mut rng = Rng::new(0xC4C_0015);
    for _ in 0..300 {
        let channels = rng.range_inclusive(1, 59) as u32;
        let a = rng.f64_range(0.1, 100.0);
        let b = rng.f64_range(0.1, 100.0);
        let (e1, e2) = if a < b { (a, b) } else { (b, a) };
        // More offered traffic → more blocking; more channels → less.
        assert!(erlang_b_blocking(channels, e1) <= erlang_b_blocking(channels, e2) + 1e-12);
        assert!(erlang_b_blocking(channels + 1, e1) <= erlang_b_blocking(channels, e1) + 1e-12);
    }
}
