//! WiMAX link-level model: adaptive modulation over the two §2.3 bands.
//!
//! "At the 2 to 11GHz frequency range it works by non-line-of-sight …
//! Higher frequency transmissions are used for line-of-sight service."
//! The model reflects that: the low band uses a suburban log-distance
//! exponent and tolerates obstruction; the high band uses free-space
//! loss but *requires* line of sight.

use wn_phy::medium::Radio;
use wn_phy::propagation::{FreeSpace, PathLoss, TwoRayGround};
use wn_phy::units::{thermal_noise, DataRate, Db, Dbm, Hertz};

/// The two §2.3 operating bands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WimaxBand {
    /// 2–11 GHz: non-line-of-sight operation ("a computer inside a
    /// building communicates with a tower/antenna outside").
    NonLineOfSight,
    /// 10–66 GHz: line-of-sight, tower-to-tower backhaul.
    LineOfSight,
}

impl WimaxBand {
    /// Representative carrier.
    pub fn frequency(self) -> Hertz {
        match self {
            WimaxBand::NonLineOfSight => Hertz::from_ghz(3.5),
            WimaxBand::LineOfSight => Hertz::from_ghz(28.0),
        }
    }
}

/// An 802.16 burst profile: modulation + coding → spectral efficiency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstProfile {
    /// Profile name (e.g. "64QAM-3/4").
    pub name: &'static str,
    /// Net bits per second per hertz.
    pub efficiency: f64,
    /// Minimum SINR to use this profile (dB).
    pub min_snr_db: f64,
}

/// The standard 802.16 OFDM burst-profile ladder.
pub const PROFILES: [BurstProfile; 7] = [
    BurstProfile {
        name: "BPSK-1/2",
        efficiency: 0.5,
        min_snr_db: 3.0,
    },
    BurstProfile {
        name: "QPSK-1/2",
        efficiency: 1.0,
        min_snr_db: 6.0,
    },
    BurstProfile {
        name: "QPSK-3/4",
        efficiency: 1.5,
        min_snr_db: 8.5,
    },
    BurstProfile {
        name: "16QAM-1/2",
        efficiency: 2.0,
        min_snr_db: 11.5,
    },
    BurstProfile {
        name: "16QAM-3/4",
        efficiency: 3.0,
        min_snr_db: 15.0,
    },
    BurstProfile {
        name: "64QAM-2/3",
        efficiency: 3.0,
        min_snr_db: 19.0,
    },
    BurstProfile {
        name: "64QAM-3/4",
        efficiency: 3.5,
        min_snr_db: 21.0,
    },
];

/// A BS↔SS link evaluator.
#[derive(Clone, Debug)]
pub struct WimaxLink {
    /// Operating band.
    pub band: WimaxBand,
    /// Channel bandwidth (the model uses 20 MHz → 70 Mbps at top
    /// profile, the text's number).
    pub bandwidth: Hertz,
    /// Base-station radio.
    pub bs_radio: Radio,
    /// Base-station antenna height (drives the two-ray model).
    pub bs_height_m: f64,
    /// Subscriber antenna height.
    pub ss_height_m: f64,
}

impl Default for WimaxLink {
    fn default() -> Self {
        WimaxLink {
            band: WimaxBand::NonLineOfSight,
            bandwidth: Hertz::from_mhz(20.0),
            bs_radio: Radio::wimax_base_station(),
            bs_height_m: 50.0,
            ss_height_m: 10.0,
        }
    }
}

impl WimaxLink {
    /// SNR at `distance_m`; `obstructed` marks a blocked path.
    ///
    /// In the LOS band an obstructed path yields no signal at all
    /// ("Short frequency transmissions are not easily disrupted by
    /// physical obstructions" — but high ones are).
    pub fn snr_at(&self, distance_m: f64, obstructed: bool) -> Option<Db> {
        let f = self.band.frequency();
        let loss = match self.band {
            WimaxBand::LineOfSight => {
                if obstructed {
                    return None;
                }
                FreeSpace.loss(distance_m, f)
            }
            WimaxBand::NonLineOfSight => {
                let two_ray = TwoRayGround {
                    tx_height_m: self.bs_height_m,
                    rx_height_m: self.ss_height_m,
                };
                let base = two_ray.loss(distance_m, f);
                let penalty = if obstructed {
                    // Building penetration + diffraction margin.
                    Db(15.0)
                } else {
                    Db(0.0)
                };
                base + penalty
            }
        };
        let rx = self.bs_radio.tx_power + self.bs_radio.tx_gain + self.bs_radio.rx_gain - loss;
        let noise = thermal_noise(self.bandwidth, self.bs_radio.noise_figure);
        Some(rx - noise)
    }

    /// The burst profile usable at `distance_m`, if any.
    pub fn profile_at(&self, distance_m: f64, obstructed: bool) -> Option<BurstProfile> {
        let snr = self.snr_at(distance_m, obstructed)?;
        PROFILES
            .iter()
            .rev()
            .find(|p| snr.value() >= p.min_snr_db)
            .copied()
    }

    /// Net data rate at `distance_m`.
    pub fn rate_at(&self, distance_m: f64, obstructed: bool) -> Option<DataRate> {
        let p = self.profile_at(distance_m, obstructed)?;
        Some(DataRate(p.efficiency * self.bandwidth.hz()))
    }

    /// The peak rate of the link (top profile × bandwidth).
    pub fn peak_rate(&self) -> DataRate {
        DataRate(PROFILES[PROFILES.len() - 1].efficiency * self.bandwidth.hz())
    }

    /// Receiver noise floor (useful for reporting).
    pub fn noise_floor(&self) -> Dbm {
        thermal_noise(self.bandwidth, self.bs_radio.noise_figure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rate_is_the_texts_70_mbps() {
        let l = WimaxLink::default();
        assert!((l.peak_rate().mbps() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn profile_ladder_is_ordered() {
        for w in PROFILES.windows(2) {
            assert!(w[1].efficiency >= w[0].efficiency);
            assert!(w[1].min_snr_db > w[0].min_snr_db);
        }
    }

    #[test]
    fn rate_decreases_with_distance() {
        let l = WimaxLink::default();
        let mut last = f64::INFINITY;
        for km in [1.0, 5.0, 10.0, 20.0, 35.0, 50.0] {
            if let Some(r) = l.rate_at(km * 1000.0, false) {
                assert!(r.mbps() <= last, "rate rose at {km} km");
                last = r.mbps();
            }
        }
    }

    #[test]
    fn close_subscribers_get_top_profile() {
        let l = WimaxLink::default();
        let p = l.profile_at(1_000.0, false).unwrap();
        assert_eq!(p.name, "64QAM-3/4");
        assert!((l.rate_at(1_000.0, false).unwrap().mbps() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_reaches_tens_of_km_nlos() {
        // "over a distance of 50 km": the NLOS band with tall masts
        // still closes a low-order link at 50 km.
        let l = WimaxLink::default();
        let r = l.rate_at(50_000.0, false);
        assert!(r.is_some(), "no coverage at 50 km");
        let r = r.unwrap().mbps();
        assert!(r >= 10.0, "only {r} Mbps at 50 km");
    }

    #[test]
    fn los_band_dies_when_obstructed() {
        let mut l = WimaxLink::default();
        l.band = WimaxBand::LineOfSight;
        assert!(l.rate_at(5_000.0, false).is_some());
        assert!(
            l.rate_at(5_000.0, true).is_none(),
            "LOS band needs line of sight"
        );
        // The NLOS band keeps working through obstructions (at reduced rate).
        let n = WimaxLink::default();
        let clear = n.rate_at(5_000.0, false).unwrap().mbps();
        let blocked = n.rate_at(5_000.0, true).unwrap().mbps();
        assert!(blocked <= clear);
    }

    #[test]
    fn los_band_longer_reach_tower_to_tower() {
        // "Higher frequency transmissions are used for line-of-sight
        // service … communicate with each other over a greater
        // distance" — with clear LOS the high band still closes links
        // far out.
        let mut l = WimaxLink::default();
        l.band = WimaxBand::LineOfSight;
        assert!(l.rate_at(30_000.0, false).is_some());
    }

    #[test]
    fn snr_none_only_when_obstructed_los() {
        let l = WimaxLink::default();
        assert!(l.snr_at(10_000.0, true).is_some());
        let mut los = WimaxLink::default();
        los.band = WimaxBand::LineOfSight;
        assert!(los.snr_at(10_000.0, true).is_none());
    }
}
