//! A std-only scoped-thread worker pool for simulation campaigns.
//!
//! Every figure in the reproduction sweeps dozens of *independent*
//! simulations (station counts, seeds, CW values, PHY generations).
//! [`par_map`] fans those sweep points out over a small pool of scoped
//! threads (`std::thread::scope`, so no `'static` bounds and no extra
//! dependencies) and returns the results **in input order**, which keeps
//! campaign output byte-identical regardless of worker count or
//! completion order.
//!
//! Worker count resolution, in priority order:
//! 1. an explicit count passed to [`par_map_with`],
//! 2. the `WN_THREADS` environment variable (`1` disables threading),
//! 3. [`std::thread::available_parallelism`].

use crate::time::{SimDuration, SimTime};
use std::sync::{Barrier, Mutex};

/// Resolves the worker count from `WN_THREADS` or the machine size.
///
/// Returns at least 1. A malformed or zero `WN_THREADS` falls back to
/// the detected parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("WN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items`, possibly in parallel, returning
/// the results in input order.
///
/// Uses [`worker_count`] threads. `f` runs on plain scoped threads, so
/// it must be `Sync` (shared by reference across workers) and `Send`
/// along with the item and result types; the items themselves are
/// regular owned values. Ordering of results is always the input order
/// — the schedule is work-stealing but the output slots are fixed.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit worker count (1 = run inline).
///
/// # Panics
///
/// Propagates the first panic raised inside `f` (the scope joins all
/// workers before unwinding).
pub fn par_map_with<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Shared queue of (input index, item); each worker pops the next
    // pending item and writes its result into the slot for that index.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop();
                let Some((idx, item)) = next else { break };
                let out = f(item);
                slots.lock().expect("slots poisoned")[idx] = Some(out);
            });
        }
    });

    let results = slots.into_inner().expect("slots poisoned");
    results
        .into_iter()
        .map(|r| r.expect("worker finished every claimed slot"))
        .collect()
}

/// A progress record emitted by the shard executor.
///
/// Messages are collected per shard and merged **in shard-index
/// order** after the run, so the returned log is identical for any
/// worker count — thread completion order never leaks into output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMsg {
    /// A shard finished advancing to one synchronization boundary.
    WindowDone {
        /// Shard index within the plan.
        shard: usize,
        /// Zero-based window number.
        window: u64,
        /// Events the shard processed inside this window.
        events: u64,
    },
    /// A shard reached the horizon.
    ShardDone {
        /// Shard index within the plan.
        shard: usize,
        /// Total events the shard processed over the whole run.
        events: u64,
    },
}

/// The synchronization boundaries of a windowed shard run: `window`,
/// `2·window`, … clamped so the final boundary is exactly `horizon`.
///
/// Exposed so callers (and tests) can reason about the exact deadline
/// sequence every shard sees — the sequence is a pure function of
/// `(window, horizon)`, never of worker count or thread timing.
pub fn shard_boundaries(window: SimDuration, horizon: SimTime) -> Vec<SimTime> {
    assert!(window.as_nanos() > 0, "shard window must be non-zero");
    let mut out = Vec::new();
    let mut t = 0u64;
    loop {
        t = t.saturating_add(window.as_nanos());
        if t >= horizon.as_nanos() {
            out.push(horizon);
            return out;
        }
        out.push(SimTime::from_nanos(t));
    }
}

/// Runs every shard straight to `horizon`, one after another, with no
/// synchronization windows. This is the *serial reference execution*
/// the windowed executor is differentially tested against: same
/// shards, same horizon, one `advance` call each.
///
/// Returns the per-shard event totals in shard-index order.
pub fn run_shards_serial<S, F>(shards: &mut [S], horizon: SimTime, advance: F) -> Vec<u64>
where
    F: Fn(&mut S, SimTime) -> u64,
{
    shards.iter_mut().map(|s| advance(s, horizon)).collect()
}

/// Advances all shards to `horizon` in lockstep windows on up to
/// `workers` scoped threads, with a [`Barrier`] between windows.
///
/// Every shard observes the exact same deadline sequence
/// ([`shard_boundaries`]) regardless of worker count, so a shard's
/// event execution — and therefore its trace and metrics — is a pure
/// function of the shard itself, never of thread placement. The
/// conservative-synchronization contract is the *caller's* obligation:
/// the window must not exceed the cross-shard lookahead, so no shard
/// can be affected by another within one window (DESIGN.md §15).
///
/// Returns `(per-shard event totals, progress log)`, both merged in
/// shard-index order.
///
/// # Panics
///
/// Panics if `window` is zero; propagates panics from `advance`.
pub fn run_shards_windowed<S, F>(
    shards: &mut [S],
    workers: usize,
    window: SimDuration,
    horizon: SimTime,
    advance: F,
) -> (Vec<u64>, Vec<ShardMsg>)
where
    S: Send,
    F: Fn(&mut S, SimTime) -> u64 + Sync,
{
    let n = shards.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let boundaries = shard_boundaries(window, horizon);

    // Contiguous chunks: shard index order is preserved within each
    // worker, and per-shard outputs are reassembled by index below.
    let per_chunk = n.div_ceil(workers.max(1).min(n));
    let chunks: Vec<(usize, &mut [S])> = {
        let mut start = 0usize;
        shards
            .chunks_mut(per_chunk)
            .map(|c| {
                let s = start;
                start += c.len();
                (s, c)
            })
            .collect()
    };
    let barrier = Barrier::new(chunks.len());

    let mut per_shard: Vec<(Vec<u64>, Vec<ShardMsg>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                let barrier = &barrier;
                let boundaries = &boundaries;
                let advance = &advance;
                scope.spawn(move || {
                    let mut totals = vec![0u64; chunk.len()];
                    let mut msgs = Vec::new();
                    for (w, &deadline) in boundaries.iter().enumerate() {
                        for (k, shard) in chunk.iter_mut().enumerate() {
                            let ev = advance(shard, deadline);
                            totals[k] += ev;
                            msgs.push(ShardMsg::WindowDone {
                                shard: start + k,
                                window: w as u64,
                                events: ev,
                            });
                        }
                        barrier.wait();
                    }
                    for (k, &t) in totals.iter().enumerate() {
                        msgs.push(ShardMsg::ShardDone {
                            shard: start + k,
                            events: t,
                        });
                    }
                    (totals, msgs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Merge in shard-index order: chunk order == shard order, and the
    // progress log is re-sorted by (shard, kind, window) so the merged
    // log is byte-identical for any worker count.
    let totals: Vec<u64> = per_shard
        .iter()
        .flat_map(|(t, _)| t.iter().copied())
        .collect();
    let mut msgs: Vec<ShardMsg> = per_shard.drain(..).flat_map(|(_, m)| m).collect();
    msgs.sort_by_key(|m| match *m {
        ShardMsg::WindowDone { shard, window, .. } => (shard, 0u8, window),
        ShardMsg::ShardDone { shard, .. } => (shard, 1u8, 0),
    });
    (totals, msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time `Send` audit for the executor's own types: a
    /// future `Rc`/`RefCell` regression in a shard payload fails here
    /// at build time, not at 2 a.m. in a soak run.
    fn assert_send<T: Send>() {}

    #[test]
    fn shard_executor_types_are_send() {
        assert_send::<ShardMsg>();
        assert_send::<Vec<ShardMsg>>();
    }

    #[test]
    fn boundaries_end_exactly_at_horizon() {
        let b = shard_boundaries(SimDuration::from_micros(64), SimTime::from_micros(200));
        assert_eq!(
            b,
            vec![
                SimTime::from_micros(64),
                SimTime::from_micros(128),
                SimTime::from_micros(192),
                SimTime::from_micros(200),
            ]
        );
        // Window >= horizon: a single boundary at the horizon.
        let one = shard_boundaries(SimDuration::from_secs(5), SimTime::from_micros(10));
        assert_eq!(one, vec![SimTime::from_micros(10)]);
    }

    /// A toy "world": a counter that steps once per nanosecond up to
    /// each deadline. Advancing it through any deadline subdivision
    /// yields the same final state, like `run_until` on a real engine.
    struct Toy {
        now: u64,
        acc: u64,
    }

    fn toy_advance(t: &mut Toy, deadline: SimTime) -> u64 {
        let mut ev = 0;
        while t.now < deadline.as_nanos() {
            t.now += 1;
            t.acc = t.acc.wrapping_mul(6364136223846793005).wrapping_add(t.now);
            ev += 1;
        }
        ev
    }

    #[test]
    fn windowed_matches_serial_for_any_worker_count() {
        let horizon = SimTime::from_nanos(997);
        let window = SimDuration::from_nanos(64);
        let mk = || (0..5).map(|i| Toy { now: 0, acc: i }).collect::<Vec<_>>();

        let mut serial = mk();
        let serial_events = run_shards_serial(&mut serial, horizon, toy_advance);

        for workers in [1, 2, 4, 8] {
            let mut sharded = mk();
            let (events, msgs) =
                run_shards_windowed(&mut sharded, workers, window, horizon, toy_advance);
            assert_eq!(events, serial_events, "worker count {workers}");
            for (a, b) in serial.iter().zip(&sharded) {
                assert_eq!((a.now, a.acc), (b.now, b.acc), "worker count {workers}");
            }
            // 16 windows (997/64 -> 15 full + the horizon) per shard,
            // plus one ShardDone per shard, merged in shard order.
            assert_eq!(msgs.len(), 5 * (16 + 1), "worker count {workers}");
        }
    }

    #[test]
    fn progress_log_is_identical_across_worker_counts() {
        let horizon = SimTime::from_nanos(512);
        let window = SimDuration::from_nanos(100);
        let run = |workers: usize| {
            let mut shards = (0..7).map(|i| Toy { now: 0, acc: i }).collect::<Vec<_>>();
            run_shards_windowed(&mut shards, workers, window, horizon, toy_advance).1
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert_eq!(one, run(7));
    }

    #[test]
    fn empty_shard_set_is_fine() {
        let (events, msgs) = run_shards_windowed(
            &mut Vec::<Toy>::new(),
            4,
            SimDuration::from_nanos(10),
            SimTime::from_nanos(100),
            toy_advance,
        );
        assert!(events.is_empty());
        assert!(msgs.is_empty());
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_with(8, items.clone(), |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let items: Vec<u64> = (0..50).collect();
        // A mildly uneven workload so the parallel schedule differs.
        let work = |x: u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 7) * 100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            par_map_with(1, items.clone(), work),
            par_map_with(4, items, work)
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_with(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(par_map_with(64, vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }
}
