//! The 802.16 point-to-multipoint frame scheduler.
//!
//! §2.3: one base station serves "thousands of users". Time is divided
//! into 5 ms frames; each frame the BS grants downlink capacity to its
//! subscriber stations according to their service class:
//!
//! - **UGS** (unsolicited grant service) — fixed periodic grants,
//!   served first (voice/T1 emulation).
//! - **rtPS** (real-time polling) — latency-sensitive variable rate.
//! - **nrtPS** (non-real-time polling) — minimum-rate guaranteed bulk.
//! - **BE** (best effort) — whatever is left, shared fairly.
//!
//! Capacity is measured in *bytes per frame*, derived from each SS's
//! burst profile — a distant SS at QPSK consumes more symbol time per
//! byte, which the scheduler accounts for by charging bytes at the
//! subscriber's own rate.

use std::collections::VecDeque;

use crate::link::WimaxLink;
use wn_sim::metrics::{MetricsRegistry, MetricsSnapshot};
use wn_sim::trace::{DropReason, FrameKind, Level, Trace, TraceEvent};
use wn_sim::{Scheduler, SimDuration, SimTime, Simulation, World};

/// The 802.16 scheduling service classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceClass {
    /// Unsolicited grant service: fixed reserved rate.
    Ugs,
    /// Real-time polling service.
    Rtps,
    /// Non-real-time polling service.
    Nrtps,
    /// Best effort.
    BestEffort,
}

/// Subscriber-station id.
pub type SubscriberId = usize;

/// Frame duration: 5 ms.
pub const FRAME: SimDuration = SimDuration::from_millis(5);

struct Subscriber {
    class: ServiceClass,
    /// Guaranteed rate (bps) for UGS/rtPS/nrtPS.
    reserved_bps: f64,
    /// Achievable PHY rate from the link model (bps).
    phy_bps: f64,
    queue: VecDeque<usize>,
    queued_bytes: usize,
    delivered_bytes: u64,
    dropped: u64,
    /// Uplink backlog at the SS (bytes), advertised via bandwidth
    /// requests.
    ul_backlog: usize,
    /// Uplink bytes landed at the BS.
    ul_delivered: u64,
}

/// Events driving the base station.
pub enum WimaxEvent {
    /// The next 5 ms frame boundary.
    FrameTick,
    /// Enqueue `bytes` of downlink traffic for a subscriber.
    Offer {
        /// Target SS.
        ss: SubscriberId,
        /// Bytes to queue.
        bytes: usize,
    },
    /// An SS queues `bytes` of uplink traffic (it will raise bandwidth
    /// requests until granted).
    OfferUplink {
        /// Originating SS.
        ss: SubscriberId,
        /// Bytes to queue.
        bytes: usize,
    },
}

/// A WiMAX base station with its subscribers (the Fig. 1.7 tower).
pub struct BaseStation {
    link: WimaxLink,
    subscribers: Vec<Subscriber>,
    /// Downlink share of each frame (0–1).
    pub dl_ratio: f64,
    /// Queue limit per SS, bytes.
    pub queue_limit_bytes: usize,
    frames: u64,
    /// Typed event trace (grants at Debug, overflow drops at Warn).
    pub trace: Trace,
}

impl BaseStation {
    /// Creates a base station with the given link model.
    pub fn new(link: WimaxLink) -> Self {
        BaseStation {
            link,
            subscribers: Vec::new(),
            dl_ratio: 0.6,
            queue_limit_bytes: 1 << 20,
            frames: 0,
            trace: Trace::new(4096),
        }
    }

    /// Adds a subscriber at `distance_m`; returns `None` when the link
    /// cannot close at all.
    pub fn add_subscriber(
        &mut self,
        distance_m: f64,
        obstructed: bool,
        class: ServiceClass,
        reserved_bps: f64,
    ) -> Option<SubscriberId> {
        let rate = self.link.rate_at(distance_m, obstructed)?;
        self.subscribers.push(Subscriber {
            class,
            reserved_bps,
            phy_bps: rate.bps(),
            queue: VecDeque::new(),
            queued_bytes: 0,
            delivered_bytes: 0,
            dropped: 0,
            ul_backlog: 0,
            ul_delivered: 0,
        });
        Some(self.subscribers.len() - 1)
    }

    /// Bytes delivered to a subscriber so far.
    pub fn delivered_bytes(&self, ss: SubscriberId) -> u64 {
        self.subscribers[ss].delivered_bytes
    }

    /// Offered-but-dropped count for a subscriber.
    pub fn dropped(&self, ss: SubscriberId) -> u64 {
        self.subscribers[ss].dropped
    }

    /// Frames elapsed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total delivered across subscribers.
    pub fn total_delivered(&self) -> u64 {
        self.subscribers.iter().map(|s| s.delivered_bytes).sum()
    }

    /// Uplink bytes a subscriber has landed at the BS.
    pub fn ul_delivered_bytes(&self, ss: SubscriberId) -> u64 {
        self.subscribers[ss].ul_delivered
    }

    /// Downlink bytes still queued at the BS for a subscriber.
    pub fn queued_bytes(&self, ss: SubscriberId) -> u64 {
        self.subscribers[ss].queued_bytes as u64
    }

    /// Uplink backlog (bytes) a subscriber is still advertising.
    pub fn ul_backlog(&self, ss: SubscriberId) -> u64 {
        self.subscribers[ss].ul_backlog as u64
    }

    /// Number of admitted subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Exports per-subscriber delivery/backlog counters and frame
    /// accounting into a named snapshot at time `now`.
    pub fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        for (i, s) in self.subscribers.iter().enumerate() {
            let id = Some(i as u32);
            reg.counter("wman", "dl_delivered_bytes", id)
                .add(s.delivered_bytes);
            reg.counter("wman", "ul_delivered_bytes", id)
                .add(s.ul_delivered);
            reg.counter("wman", "dropped", id).add(s.dropped);
            reg.counter("wman", "queued_bytes", id)
                .add(s.queued_bytes as u64);
        }
        reg.counter("wman", "frames", None).add(self.frames);
        reg.snapshot(now)
    }

    /// Serves one frame: symbol time is the scarce resource. Each SS's
    /// grant is converted to bytes at its own PHY rate.
    fn serve_frame(&mut self, now: SimTime) {
        self.frames += 1;
        let frame_s = FRAME.as_secs_f64() * self.dl_ratio;
        let mut time_left = frame_s;

        // Pass 1: reserved grants (UGS first, then rtPS, then nrtPS).
        let mut order: Vec<usize> = (0..self.subscribers.len()).collect();
        order.sort_by_key(|&i| self.subscribers[i].class);
        for &i in &order {
            if time_left <= 0.0 {
                break;
            }
            let s = &mut self.subscribers[i];
            if s.class == ServiceClass::BestEffort || s.reserved_bps <= 0.0 {
                continue;
            }
            // The reserved grant in seconds of symbol time per frame.
            let grant_bytes = s.reserved_bps * FRAME.as_secs_f64() / 8.0;
            let want_bytes = (s.queued_bytes as f64).min(grant_bytes);
            let need_s = want_bytes * 8.0 / s.phy_bps;
            let use_s = need_s.min(time_left);
            let moved = (use_s * s.phy_bps / 8.0) as usize;
            Self::dequeue(s, moved);
            time_left -= use_s;
            if moved > 0 {
                self.trace.event(
                    now,
                    Level::Debug,
                    "wman",
                    TraceEvent::Grant {
                        station: i as u32,
                        bytes: moved as u64,
                        uplink: false,
                    },
                );
            }
        }

        // Uplink subframe: grants against advertised backlogs, reserved
        // classes first, the remainder shared round-robin.
        let ul_s = FRAME.as_secs_f64() * (1.0 - self.dl_ratio).max(0.0);
        let mut ul_left = ul_s;
        let mut order_ul: Vec<usize> = (0..self.subscribers.len()).collect();
        order_ul.sort_by_key(|&i| self.subscribers[i].class);
        for &i in &order_ul {
            if ul_left <= 0.0 {
                break;
            }
            let s = &mut self.subscribers[i];
            if s.class == ServiceClass::BestEffort || s.reserved_bps <= 0.0 {
                continue;
            }
            let grant_bytes = s.reserved_bps * FRAME.as_secs_f64() / 8.0;
            let want = (s.ul_backlog as f64).min(grant_bytes);
            let need_s = want * 8.0 / s.phy_bps;
            let use_s = need_s.min(ul_left);
            let moved = (use_s * s.phy_bps / 8.0) as usize;
            let moved = moved.min(s.ul_backlog);
            s.ul_backlog -= moved;
            s.ul_delivered += moved as u64;
            ul_left -= use_s;
            if moved > 0 {
                self.trace.event(
                    now,
                    Level::Debug,
                    "wman",
                    TraceEvent::Grant {
                        station: i as u32,
                        bytes: moved as u64,
                        uplink: true,
                    },
                );
            }
        }
        let mut ul_backlogged: Vec<usize> = (0..self.subscribers.len())
            .filter(|&i| self.subscribers[i].ul_backlog > 0)
            .collect();
        while ul_left > 1e-9 && !ul_backlogged.is_empty() {
            let share = ul_left / ul_backlogged.len() as f64;
            let mut next = Vec::new();
            for &i in &ul_backlogged {
                let s = &mut self.subscribers[i];
                let can = ((share * s.phy_bps / 8.0) as usize).min(s.ul_backlog);
                s.ul_backlog -= can;
                s.ul_delivered += can as u64;
                ul_left -= can as f64 * 8.0 / s.phy_bps;
                if s.ul_backlog > 0 {
                    next.push(i);
                }
                if can > 0 {
                    self.trace.event(
                        now,
                        Level::Debug,
                        "wman",
                        TraceEvent::Grant {
                            station: i as u32,
                            bytes: can as u64,
                            uplink: true,
                        },
                    );
                }
            }
            if next.len() == ul_backlogged.len() {
                break;
            }
            ul_backlogged = next;
        }

        // Pass 2: the remainder is shared round-robin over every
        // backlogged SS (best effort + excess demand).
        let mut backlogged: Vec<usize> = (0..self.subscribers.len())
            .filter(|&i| self.subscribers[i].queued_bytes > 0)
            .collect();
        while time_left > 1e-9 && !backlogged.is_empty() {
            let share = time_left / backlogged.len() as f64;
            let mut next = Vec::new();
            for &i in &backlogged {
                let s = &mut self.subscribers[i];
                let can_bytes = (share * s.phy_bps / 8.0) as usize;
                let moved = can_bytes.min(s.queued_bytes);
                Self::dequeue(s, moved);
                let used = moved as f64 * 8.0 / s.phy_bps;
                time_left -= used;
                if s.queued_bytes > 0 {
                    next.push(i);
                }
                if moved > 0 {
                    self.trace.event(
                        now,
                        Level::Debug,
                        "wman",
                        TraceEvent::Grant {
                            station: i as u32,
                            bytes: moved as u64,
                            uplink: false,
                        },
                    );
                }
            }
            if next.len() == backlogged.len() {
                // Nobody drained fully: the shares consumed the frame.
                break;
            }
            backlogged = next;
        }
    }

    fn dequeue(s: &mut Subscriber, mut bytes: usize) {
        while bytes > 0 {
            let Some(front) = s.queue.front_mut() else {
                break;
            };
            let take = (*front).min(bytes);
            *front -= take;
            bytes -= take;
            s.queued_bytes -= take;
            s.delivered_bytes += take as u64;
            if *front == 0 {
                s.queue.pop_front();
            }
        }
    }
}

impl World for BaseStation {
    type Event = WimaxEvent;

    fn handle(&mut self, now: SimTime, ev: WimaxEvent, sched: &mut Scheduler<WimaxEvent>) {
        match ev {
            WimaxEvent::FrameTick => {
                self.serve_frame(now);
                sched.schedule_in(FRAME, WimaxEvent::FrameTick);
            }
            WimaxEvent::Offer { ss, bytes } => {
                let limit = self.queue_limit_bytes;
                let s = &mut self.subscribers[ss];
                if s.queued_bytes + bytes > limit {
                    s.dropped += 1;
                    self.trace.event(
                        now,
                        Level::Warn,
                        "wman",
                        TraceEvent::Drop {
                            station: ss as u32,
                            kind: FrameKind::Data,
                            reason: DropReason::QueueFull,
                        },
                    );
                } else {
                    s.queue.push_back(bytes);
                    s.queued_bytes += bytes;
                }
            }
            WimaxEvent::OfferUplink { ss, bytes } => {
                let limit = self.queue_limit_bytes;
                let s = &mut self.subscribers[ss];
                if s.ul_backlog + bytes > limit {
                    s.dropped += 1;
                    self.trace.event(
                        now,
                        Level::Warn,
                        "wman",
                        TraceEvent::Drop {
                            station: ss as u32,
                            kind: FrameKind::Data,
                            reason: DropReason::QueueFull,
                        },
                    );
                } else {
                    s.ul_backlog += bytes;
                }
            }
        }
    }
}

/// Boots the frame clock.
pub fn boot(sim: &mut Simulation<BaseStation>) {
    sim.scheduler_mut()
        .schedule_at(SimTime::ZERO, WimaxEvent::FrameTick);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturate(sim: &mut Simulation<BaseStation>, ss: SubscriberId, secs: u64) {
        // Keep far more than a frame's worth queued throughout.
        sim.world_mut().queue_limit_bytes = 256 << 20;
        for t in 0..secs * 10 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::Offer {
                    ss,
                    bytes: 4_000_000,
                },
            );
        }
    }

    #[test]
    fn single_close_subscriber_approaches_70_mbps() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 1.0;
        let ss = bs
            .add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
            .unwrap();
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        saturate(&mut sim, ss, 5);
        sim.run_until(SimTime::from_secs(5));
        let mbps = sim.world().delivered_bytes(ss) as f64 * 8.0 / 5.0 / 1e6;
        assert!((60.0..71.0).contains(&mbps), "{mbps} Mbps");
    }

    #[test]
    fn capacity_shared_among_equal_subscribers() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 1.0;
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(
                bs.add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
                    .unwrap(),
            );
        }
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        for &ss in &ids {
            saturate(&mut sim, ss, 5);
        }
        sim.run_until(SimTime::from_secs(5));
        let rates: Vec<f64> = ids
            .iter()
            .map(|&ss| sim.world().delivered_bytes(ss) as f64 * 8.0 / 5.0 / 1e6)
            .collect();
        let total: f64 = rates.iter().sum();
        assert!((55.0..71.0).contains(&total), "total {total}");
        for r in &rates {
            assert!((r - total / 5.0).abs() < total * 0.05, "unfair: {rates:?}");
        }
    }

    #[test]
    fn distant_subscriber_consumes_more_airtime() {
        // A far SS at QPSK drags the aggregate down — the classic PMP
        // effect. Compare aggregate with two near vs near+far.
        let run = |far: bool| {
            // Low masts: the two-ray crossover lands at ~3 km, so the
            // far subscriber genuinely falls down the profile ladder.
            let mut link = WimaxLink::default();
            link.bs_height_m = 10.0;
            link.ss_height_m = 2.0;
            let mut bs = BaseStation::new(link);
            bs.dl_ratio = 1.0;
            let a = bs
                .add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
                .unwrap();
            let b_dist = if far { 45_000.0 } else { 1_000.0 };
            let b = bs
                .add_subscriber(b_dist, false, ServiceClass::BestEffort, 0.0)
                .unwrap();
            let mut sim = Simulation::new(bs);
            boot(&mut sim);
            saturate(&mut sim, a, 5);
            saturate(&mut sim, b, 5);
            sim.run_until(SimTime::from_secs(5));
            sim.world().total_delivered() as f64 * 8.0 / 5.0 / 1e6
        };
        let near_only = run(false);
        let with_far = run(true);
        assert!(
            with_far < near_only * 0.8,
            "far SS should depress aggregate: near={near_only} far={with_far}"
        );
    }

    #[test]
    fn ugs_rate_guaranteed_under_congestion() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 1.0;
        // A 10 Mbps UGS flow plus 6 saturated best-effort hogs.
        let ugs = bs
            .add_subscriber(5_000.0, false, ServiceClass::Ugs, 10e6)
            .unwrap();
        let mut hogs = Vec::new();
        for _ in 0..6 {
            hogs.push(
                bs.add_subscriber(5_000.0, false, ServiceClass::BestEffort, 0.0)
                    .unwrap(),
            );
        }
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        saturate(&mut sim, ugs, 5);
        for &h in &hogs {
            saturate(&mut sim, h, 5);
        }
        sim.run_until(SimTime::from_secs(5));
        let ugs_mbps = sim.world().delivered_bytes(ugs) as f64 * 8.0 / 5.0 / 1e6;
        assert!(
            ugs_mbps >= 9.5,
            "UGS got only {ugs_mbps} Mbps under congestion"
        );
    }

    #[test]
    fn uplink_grants_deliver_traffic() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 0.5;
        bs.queue_limit_bytes = 64 << 20;
        let ss = bs
            .add_subscriber(2_000.0, false, ServiceClass::BestEffort, 0.0)
            .unwrap();
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        sim.scheduler_mut().schedule_at(
            SimTime::ZERO,
            WimaxEvent::OfferUplink {
                ss,
                bytes: 2_000_000,
            },
        );
        sim.run_until(SimTime::from_secs(1));
        let got = sim.world().ul_delivered_bytes(ss);
        assert_eq!(got, 2_000_000, "the uplink backlog drains fully");
    }

    #[test]
    fn uplink_capacity_is_the_other_subframe() {
        // dl_ratio 0.5 → UL gets ~35 Mbps of the 70 Mbps cell.
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 0.5;
        bs.queue_limit_bytes = 256 << 20;
        let ss = bs
            .add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
            .unwrap();
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        for t in 0..10 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::OfferUplink {
                    ss,
                    bytes: 8_000_000,
                },
            );
        }
        sim.run_until(SimTime::from_secs(1));
        let mbps = sim.world().ul_delivered_bytes(ss) as f64 * 8.0 / 1e6;
        assert!((30.0..36.0).contains(&mbps), "UL throughput {mbps} Mbps");
    }

    #[test]
    fn ugs_uplink_guaranteed_under_uplink_congestion() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.dl_ratio = 0.5;
        bs.queue_limit_bytes = 256 << 20;
        let ugs = bs
            .add_subscriber(5_000.0, false, ServiceClass::Ugs, 8e6)
            .unwrap();
        let mut hogs = Vec::new();
        for _ in 0..5 {
            hogs.push(
                bs.add_subscriber(5_000.0, false, ServiceClass::BestEffort, 0.0)
                    .unwrap(),
            );
        }
        let mut sim = Simulation::new(bs);
        boot(&mut sim);
        for t in 0..10u64 {
            sim.scheduler_mut().schedule_at(
                SimTime::from_millis(t * 100),
                WimaxEvent::OfferUplink {
                    ss: ugs,
                    bytes: 1_000_000,
                },
            );
            for &h in &hogs {
                sim.scheduler_mut().schedule_at(
                    SimTime::from_millis(t * 100),
                    WimaxEvent::OfferUplink {
                        ss: h,
                        bytes: 8_000_000,
                    },
                );
            }
        }
        sim.run_until(SimTime::from_secs(1));
        let ugs_mbps = sim.world().ul_delivered_bytes(ugs) as f64 * 8.0 / 1e6;
        assert!(ugs_mbps >= 7.5, "UGS uplink got only {ugs_mbps} Mbps");
    }

    #[test]
    fn out_of_range_subscriber_rejected() {
        let mut bs = BaseStation::new(WimaxLink::default());
        assert!(bs
            .add_subscriber(500_000.0, false, ServiceClass::BestEffort, 0.0)
            .is_none());
    }

    #[test]
    fn queue_limit_drops_offers() {
        let mut bs = BaseStation::new(WimaxLink::default());
        bs.queue_limit_bytes = 10_000;
        let ss = bs
            .add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
            .unwrap();
        let mut sim = Simulation::new(bs);
        // No frame clock: queue just fills.
        for _ in 0..5 {
            sim.scheduler_mut()
                .schedule_at(SimTime::ZERO, WimaxEvent::Offer { ss, bytes: 4_000 });
        }
        sim.run();
        assert_eq!(sim.world().dropped(ss), 3);
    }

    #[test]
    fn dl_ratio_scales_throughput() {
        let run = |ratio: f64| {
            let mut bs = BaseStation::new(WimaxLink::default());
            bs.dl_ratio = ratio;
            let ss = bs
                .add_subscriber(1_000.0, false, ServiceClass::BestEffort, 0.0)
                .unwrap();
            let mut sim = Simulation::new(bs);
            boot(&mut sim);
            saturate(&mut sim, ss, 2);
            sim.run_until(SimTime::from_secs(2));
            sim.world().delivered_bytes(ss) as f64
        };
        let full = run(1.0);
        let half = run(0.5);
        assert!(
            (half / full - 0.5).abs() < 0.05,
            "half/full = {}",
            half / full
        );
    }
}
