//! Bounded event tracing.
//!
//! A [`Trace`] is a ring buffer of timestamped, categorised strings. It
//! exists for two reasons: interactive debugging of protocol exchanges
//! (print the last N MAC events), and test assertions about *ordering*
//! ("the CTS was sent after the RTS", "no data frame preceded
//! association"). It is deliberately simple — no I/O, no globals.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Importance of a trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume per-frame detail.
    Debug,
    /// Normal protocol milestones (association, handoff, crack success).
    Info,
    /// Abnormal but recoverable conditions (retry limit, CRC failure).
    Warn,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Importance.
    pub level: Level,
    /// Short category tag, e.g. `"mac"`, `"phy"`, `"sec"`.
    pub tag: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.at, self.level, self.tag, self.message
        )
    }
}

/// A bounded ring buffer of trace records.
#[derive(Clone, Debug)]
pub struct Trace {
    records: VecDeque<Record>,
    capacity: usize,
    min_level: Level,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Trace {
    /// Creates a trace retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            min_level: Level::Debug,
            dropped: 0,
        }
    }

    /// Sets the minimum level retained; lower-level records are ignored.
    pub fn set_min_level(&mut self, level: Level) {
        self.min_level = level;
    }

    /// Appends a record, evicting the oldest when full.
    pub fn emit(&mut self, at: SimTime, level: Level, tag: &'static str, message: String) {
        if level < self.min_level {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(Record {
            at,
            level,
            tag,
            message,
        });
    }

    /// Convenience: emit at [`Level::Debug`].
    pub fn debug(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Debug, tag, message.into());
    }

    /// Convenience: emit at [`Level::Info`].
    pub fn info(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Info, tag, message.into());
    }

    /// Convenience: emit at [`Level::Warn`].
    pub fn warn(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        self.emit(at, Level::Warn, tag, message.into());
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Index of the first retained record whose message contains `needle`.
    pub fn position_containing(&self, needle: &str) -> Option<usize> {
        self.records.iter().position(|r| r.message.contains(needle))
    }

    /// `true` if a record containing `a` precedes one containing `b`.
    ///
    /// The canonical ordering assertion for protocol tests.
    pub fn happened_before(&self, a: &str, b: &str) -> bool {
        match (self.position_containing(a), self.position_containing(b)) {
            (Some(ia), Some(ib)) => ia < ib,
            _ => false,
        }
    }

    /// Counts retained records whose message contains `needle`.
    pub fn count_containing(&self, needle: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn emits_and_reads_back() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "rts sent");
        tr.info(t(2), "mac", "cts sent");
        assert_eq!(tr.len(), 2);
        let msgs: Vec<&str> = tr.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["rts sent", "cts sent"]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..5 {
            tr.info(t(i), "x", format!("m{i}"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let msgs: Vec<&str> = tr.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn level_filter_drops_below_min() {
        let mut tr = Trace::new(10);
        tr.set_min_level(Level::Info);
        tr.debug(t(0), "x", "noise");
        tr.info(t(1), "x", "signal");
        tr.warn(t(2), "x", "alarm");
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn happened_before_orders_correctly() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "rts to ap");
        tr.info(t(2), "mac", "cts from ap");
        tr.info(t(3), "mac", "data to ap");
        assert!(tr.happened_before("rts", "cts"));
        assert!(tr.happened_before("cts", "data"));
        assert!(!tr.happened_before("data", "rts"));
        assert!(!tr.happened_before("missing", "rts"));
    }

    #[test]
    fn count_containing_counts() {
        let mut tr = Trace::new(10);
        tr.info(t(1), "mac", "retry 1");
        tr.info(t(2), "mac", "retry 2");
        tr.info(t(3), "mac", "ack");
        assert_eq!(tr.count_containing("retry"), 2);
        assert_eq!(tr.count_containing("nak"), 0);
    }

    #[test]
    fn display_includes_time_and_tag() {
        let mut tr = Trace::new(4);
        tr.warn(t(5), "phy", "crc failure");
        let s = tr.records().next().unwrap().to_string();
        assert!(s.contains("phy"), "{s}");
        assert!(s.contains("crc failure"), "{s}");
        assert!(s.contains("5.000ms"), "{s}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::new(0);
    }
}
