//! Receiver-side duplicate detection.
//!
//! When an ACK is lost the sender retransmits with the Retry bit set
//! (§4.2), and the receiver must not deliver the same MSDU twice. The
//! standard's duplicate cache keys on (transmitter, sequence, fragment).
//!
//! The cache is bounded. A receiver only needs the *latest* sequence
//! control per transmitter (the standard's single-entry-per-<Address 2>
//! cache), and it only needs it while that transmitter is plausibly
//! still retrying — so the table holds at most [`DedupCache::DEFAULT_CAPACITY`]
//! transmitters and evicts the least-recently-heard one when a new
//! transmitter would exceed that. Without the bound, a station that
//! overhears many distinct transmitters over a long run (roaming
//! clients, a busy hot spot, an adversarial address sweep) grows the
//! table one entry per address forever; `forget` exists for clean
//! disassociation but nothing guarantees it is called.
//!
//! Eviction risk is bounded by the semantics: dropping a transmitter's
//! entry can only cause one *extra accepted duplicate* (not a loss),
//! and only if that transmitter was silent long enough for 2048 other
//! transmitters to be heard in between — far beyond any plausible
//! retry window.

use std::collections::HashMap;

use crate::addr::MacAddr;
use crate::frame::SequenceControl;

/// One tracked transmitter: its latest accepted sequence control and
/// the logical time it was last heard (the LRU clock).
#[derive(Clone, Copy, Debug)]
struct Entry {
    seq: SequenceControl,
    used: u64,
}

/// A per-receiver duplicate-detection cache, bounded to the most
/// recently heard transmitters.
#[derive(Clone, Debug)]
pub struct DedupCache {
    last_seen: HashMap<MacAddr, Entry>,
    /// Monotonic use counter; unique per touch, so the LRU victim is
    /// deterministic.
    clock: u64,
    capacity: usize,
}

impl Default for DedupCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DedupCache {
    /// Transmitters tracked before the least-recently-heard one is
    /// evicted. Larger than the station count of any current scenario,
    /// so eviction only engages on genuinely unbounded address churn.
    pub const DEFAULT_CAPACITY: usize = 2048;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to `capacity` transmitters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup cache needs room for one transmitter");
        DedupCache {
            last_seen: HashMap::new(),
            clock: 0,
            capacity,
        }
    }

    /// Records a received frame and reports whether it is a duplicate.
    ///
    /// Per the standard, a frame is a duplicate when the Retry bit is
    /// set *and* its sequence control equals the last accepted frame
    /// from the same transmitter. Every check — duplicate or not —
    /// counts as hearing the transmitter for eviction purposes.
    pub fn check(&mut self, transmitter: MacAddr, seq: SequenceControl, retry: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.last_seen.get_mut(&transmitter) {
            let dup = retry && e.seq == seq;
            if !dup {
                e.seq = seq;
            }
            e.used = clock;
            return dup;
        }
        if self.last_seen.len() >= self.capacity {
            // Evict the least-recently-heard transmitter. The scan is
            // O(capacity) but runs only when a *new* transmitter
            // arrives at a full table — never in steady state with a
            // stable peer set.
            let victim = self
                .last_seen
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(&a, _)| a)
                .expect("capacity > 0, table full");
            self.last_seen.remove(&victim);
        }
        self.last_seen
            .insert(transmitter, Entry { seq, used: clock });
        false
    }

    /// Forgets a transmitter (e.g. on disassociation).
    pub fn forget(&mut self, transmitter: MacAddr) {
        self.last_seen.remove(&transmitter);
    }

    /// Number of transmitters tracked.
    pub fn len(&self) -> usize {
        self.last_seen.len()
    }

    /// `true` when no transmitters are tracked.
    pub fn is_empty(&self) -> bool {
        self.last_seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(seq: u16, frag: u8) -> SequenceControl {
        SequenceControl {
            sequence: seq,
            fragment: frag,
        }
    }

    #[test]
    fn retransmission_detected() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        // The retry of the same frame is a duplicate.
        assert!(c.check(tx, sc(10, 0), true));
        // And again.
        assert!(c.check(tx, sc(10, 0), true));
    }

    #[test]
    fn new_sequence_not_duplicate() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        assert!(!c.check(tx, sc(11, 0), false));
        // A retry of a *different* frame is not a duplicate.
        assert!(!c.check(tx, sc(12, 0), true));
    }

    #[test]
    fn fragments_tracked_separately() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        assert!(!c.check(tx, sc(10, 0), false));
        assert!(!c.check(tx, sc(10, 1), false));
        assert!(c.check(tx, sc(10, 1), true));
    }

    #[test]
    fn transmitters_independent() {
        let mut c = DedupCache::new();
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        assert!(!c.check(a, sc(5, 0), false));
        // Same sequence from another STA is fine.
        assert!(!c.check(b, sc(5, 0), true));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn retry_without_prior_sighting_accepted() {
        // First copy lost entirely; the retry is the first we see.
        let mut c = DedupCache::new();
        assert!(!c.check(MacAddr::station(3), sc(7, 0), true));
    }

    #[test]
    fn forget_clears_state() {
        let mut c = DedupCache::new();
        let tx = MacAddr::station(1);
        c.check(tx, sc(10, 0), false);
        c.forget(tx);
        assert!(c.is_empty());
        // After forgetting, even an exact retry is accepted (fresh
        // association ⇒ fresh counters).
        assert!(!c.check(tx, sc(10, 0), true));
    }

    #[test]
    fn eviction_removes_least_recently_heard() {
        let mut c = DedupCache::with_capacity(2);
        let (a, b, x) = (
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(3),
        );
        c.check(a, sc(1, 0), false);
        c.check(b, sc(2, 0), false);
        // Touch `a` (a duplicate check still counts as hearing it).
        assert!(c.check(a, sc(1, 0), true));
        // `x` arrives at a full table: `b` is now the LRU victim.
        assert!(!c.check(x, sc(9, 0), false));
        assert_eq!(c.len(), 2);
        // `a` survived — its retry is still recognised.
        assert!(c.check(a, sc(1, 0), true));
        // `b` was evicted — its exact retry is accepted as new.
        assert!(!c.check(b, sc(2, 0), true));
    }

    /// The long-run memory regression: a receiver that hears an
    /// unbounded stream of distinct transmitters (roaming clients, an
    /// address sweep) must not grow without bound. Before the LRU
    /// bound, this held 100 000 entries.
    #[test]
    fn unbounded_transmitter_churn_stays_bounded() {
        let mut c = DedupCache::new();
        for i in 0..100_000u32 {
            c.check(MacAddr::station(i), sc((i % 4096) as u16, 0), false);
            assert!(c.len() <= DedupCache::DEFAULT_CAPACITY);
        }
        assert_eq!(c.len(), DedupCache::DEFAULT_CAPACITY);
        // The most recent transmitters are the survivors: their retries
        // still dedup.
        assert!(c.check(
            MacAddr::station(99_999),
            sc((99_999 % 4096) as u16, 0),
            true
        ));
    }
}
