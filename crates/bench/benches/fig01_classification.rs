//! FIG-1.1 — regenerates the wireless-network classification scatter
//! (range vs rate per technology) and times one registry measurement.

use std::hint::black_box;

use wn_bench::{bench, print_figure};
use wn_core::registry::Technology;
use wn_core::scenarios::fig_1_1_classification;

fn main() {
    let fig = fig_1_1_classification();
    print_figure(&fig);
    assert_eq!(fig.series.len(), 13, "all table rows present");

    bench("fig01/measure_wifi_g_row", || {
        black_box(Technology::WiFi(wn_phy::modulation::PhyStandard::Dot11g).measure())
    });
    bench("fig01/measure_irda_row", || {
        black_box(Technology::Irda.measure())
    });
}
