//! Paper-vs-measured reporting.
//!
//! Every experiment produces an [`ExperimentReport`]: an id (the figure
//! or table it reproduces), a set of claim/measured pairs, and a
//! pass/fail judgement under a relative tolerance. `EXPERIMENTS.md` is
//! generated from these.

use std::fmt;

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is being compared (e.g. "802.11g peak rate, Mbps").
    pub quantity: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptable relative deviation (e.g. 0.5 = within 2×).
    pub tolerance: f64,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(quantity: impl Into<String>, paper: f64, measured: f64, tolerance: f64) -> Self {
        Comparison {
            quantity: quantity.into(),
            paper,
            measured,
            tolerance,
        }
    }

    /// Whether the measurement falls inside the tolerance band.
    pub fn holds(&self) -> bool {
        if self.paper == 0.0 {
            return self.measured.abs() <= self.tolerance;
        }
        let rel = (self.measured - self.paper).abs() / self.paper.abs();
        rel <= self.tolerance
    }
}

/// A full experiment report.
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "FIG-1.13" or "TAB-8.1".
    pub id: String,
    /// One-line description.
    pub title: String,
    /// The compared quantities.
    pub comparisons: Vec<Comparison>,
    /// Qualitative observations (crossovers, orderings) recorded as
    /// booleans with labels.
    pub claims: Vec<(String, bool)>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            comparisons: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Adds a quantitative comparison.
    pub fn compare(
        &mut self,
        quantity: impl Into<String>,
        paper: f64,
        measured: f64,
        tolerance: f64,
    ) -> &mut Self {
        self.comparisons
            .push(Comparison::new(quantity, paper, measured, tolerance));
        self
    }

    /// Records a qualitative claim ("mesh beats star at N>12": true).
    pub fn claim(&mut self, label: impl Into<String>, holds: bool) -> &mut Self {
        self.claims.push((label.into(), holds));
        self
    }

    /// `true` when every comparison and claim holds.
    pub fn passed(&self) -> bool {
        self.comparisons.iter().all(Comparison::holds) && self.claims.iter().all(|&(_, h)| h)
    }

    /// Renders as a Markdown section for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let status = if self.passed() { "PASS" } else { "CHECK" };
        let _ = writeln!(out, "### {} — {} [{}]\n", self.id, self.title, status);
        if !self.comparisons.is_empty() {
            let _ = writeln!(out, "| quantity | paper | measured | ok |");
            let _ = writeln!(out, "|---|---|---|---|");
            for c in &self.comparisons {
                let _ = writeln!(
                    out,
                    "| {} | {:.4} | {:.4} | {} |",
                    c.quantity,
                    c.paper,
                    c.measured,
                    if c.holds() { "yes" } else { "NO" }
                );
            }
        }
        for (label, holds) in &self.claims {
            let _ = writeln!(
                out,
                "- {} — {}",
                label,
                if *holds { "holds" } else { "FAILS" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_tolerance() {
        assert!(Comparison::new("x", 100.0, 120.0, 0.25).holds());
        assert!(!Comparison::new("x", 100.0, 160.0, 0.25).holds());
        assert!(Comparison::new("zero", 0.0, 0.0, 0.1).holds());
        assert!(!Comparison::new("zero", 0.0, 5.0, 0.1).holds());
    }

    #[test]
    fn report_pass_fail() {
        let mut r = ExperimentReport::new("T", "test");
        r.compare("a", 10.0, 11.0, 0.2).claim("ordering", true);
        assert!(r.passed());
        r.claim("broken", false);
        assert!(!r.passed());
    }

    #[test]
    fn markdown_rendering() {
        let mut r = ExperimentReport::new("FIG-X", "demo");
        r.compare("rate [Mbps]", 54.0, 26.0, 1.0)
            .claim("g beats b", true);
        let md = r.to_markdown();
        assert!(md.contains("FIG-X"));
        assert!(md.contains("rate [Mbps]"));
        assert!(md.contains("g beats b"));
        assert!(md.contains("PASS"));
    }
}
