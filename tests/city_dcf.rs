//! CITY-DCF at full scale: the spatially-sharded city of saturated
//! BSSes, proven byte-identical between the serial composition and
//! the windowed shard executor (DESIGN.md §15), checked from the
//! point observables rather than the experiment harness's own claims.
//!
//! The flagship city is release-sized (108 BSSes, 10,476 stations);
//! the tier-1 debug suite skips this file and CI runs it in the
//! release job, like `scale_dcf.rs`.

use wireless_networks::core::scenarios::{
    city_dcf_collapse_sweep, city_dcf_point, city_dcf_size, CityDcfPoint,
};

fn dump(p: &CityDcfPoint) {
    eprintln!(
        "CITY-DCF cells={} stations={} senders/cell={} shards={} lookahead={}ns \
         jain={:.4} per_sender={:.1} kbps identical={}",
        p.cells,
        p.stations,
        p.senders_per_cell,
        p.shards,
        p.lookahead.as_nanos(),
        p.jain_cross_bss,
        p.per_station_kbps,
        p.byte_identical(),
    );
}

/// The headline contract: ≥100 BSSes / ≥10k stations partition into
/// one shard per cell, complete under the shard executor at 1, 2 and
/// 4 workers, and every execution digests byte-identically to the
/// serial reference — with the cross-BSS load balanced (Jain ≥ 0.95)
/// and every sender saturated to the horizon.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized city (10k+ stations); run with --release (CI does)"
)]
fn flagship_city_is_byte_identical_under_the_shard_executor() {
    let (rows, cols, senders, duration_ms) = city_dcf_size();
    let p = city_dcf_point(rows, cols, senders, duration_ms, 42);
    dump(&p);

    assert!(p.cells >= 100, "flagship must cover >=100 BSSes");
    assert!(p.stations >= 10_000, "flagship must cover >=10k stations");
    assert_eq!(p.shards, p.cells, "one interference shard per BSS");
    assert!(
        p.incoherence.is_none(),
        "plan failed validation: {:?}",
        p.incoherence
    );
    assert!(p.serial.events > 0, "the city must actually run");
    assert_eq!(
        p.windowed.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
        vec![1, 2, 4],
        "all three worker counts must run"
    );
    for (workers, r) in &p.windowed {
        assert_eq!(
            (r.events, r.trace_fnv, r.metrics_fnv),
            (p.serial.events, p.serial.trace_fnv, p.serial.metrics_fnv),
            "windowed x{workers} diverged from the serial composition"
        );
    }
    assert!(
        p.jain_cross_bss >= 0.95,
        "cross-BSS Jain {:.4} < 0.95",
        p.jain_cross_bss
    );
    assert!(p.saturated, "a sender drained its queue before the horizon");
}

/// Densifying the cells collapses per-sender goodput monotonically
/// while the partition stays one-shard-per-cell and every point stays
/// byte-identical — contention is per-cell, sharding is free.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized sweep; run with --release (CI does)"
)]
fn densification_collapses_per_sender_goodput_monotonically() {
    let (rows, cols, sweep, duration_ms) = city_dcf_collapse_sweep();
    let points: Vec<CityDcfPoint> = sweep
        .iter()
        .map(|&n| city_dcf_point(rows, cols, n, duration_ms, 42))
        .collect();
    for p in &points {
        dump(p);
        assert_eq!(p.shards, p.cells);
        assert!(
            p.byte_identical(),
            "divergence at {} senders/cell",
            p.senders_per_cell
        );
        assert!(p.saturated);
    }
    for pair in points.windows(2) {
        assert!(
            pair[1].per_station_kbps <= pair[0].per_station_kbps,
            "goodput rose from {:.1} to {:.1} kbps as cells densified ({} -> {} senders)",
            pair[0].per_station_kbps,
            pair[1].per_station_kbps,
            pair[0].senders_per_cell,
            pair[1].senders_per_cell,
        );
    }
}
