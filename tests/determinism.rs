//! Determinism regression tests: the parallel campaign runner must be
//! a pure optimisation — same seeds, same bytes, any thread count.

use wireless_networks::core::runner;
use wireless_networks::core::scenarios::wlan_saturation_full;
use wireless_networks::phy::modulation::PhyStandard;

/// The full campaign renders byte-identically on one worker and on
/// eight. This is the guarantee EXPERIMENTS.md regeneration relies on:
/// `par_map_with` returns results in registry order and every scenario
/// is deterministic from its baked seed.
#[test]
fn campaign_markdown_is_byte_identical_across_thread_counts() {
    let serial = runner::campaign_markdown(1);
    let parallel = runner::campaign_markdown(8);
    assert!(
        serial == parallel,
        "campaign output diverged between 1 and 8 threads"
    );
    // Sanity: the campaign actually rendered every section.
    for e in runner::experiments() {
        assert!(
            serial.contains(&format!("### {}", e.id)),
            "missing section {}",
            e.id
        );
    }
}

/// The observability exports (typed trace + metrics JSONL) are also
/// byte-identical for any worker count — the guarantee behind
/// `report --trace-json` / `--metrics-json`.
#[test]
fn observability_jsonl_is_byte_identical_across_thread_counts() {
    let serial = runner::run_observability(1);
    let parallel = runner::run_observability(8);
    assert_eq!(
        runner::observability_trace_jsonl(&serial),
        runner::observability_trace_jsonl(&parallel),
        "trace JSONL diverged between 1 and 8 threads"
    );
    assert_eq!(
        runner::observability_metrics_jsonl(&serial),
        runner::observability_metrics_jsonl(&parallel),
        "metrics JSONL diverged between 1 and 8 threads"
    );
    assert!(!serial.is_empty(), "some experiments must be instrumented");
}

/// The simulation fuzzer is deterministic the same way: a seed range's
/// digest — per-seed event counts, violation counts and full-trace
/// fingerprints — is byte-identical at `--threads 1` and `--threads 8`,
/// and stable across repeat runs in one process.
#[test]
fn fuzzer_digest_is_byte_identical_across_thread_counts() {
    let serial = wireless_networks::check::range_digest(0, 32, 1);
    let parallel = wireless_networks::check::range_digest(0, 32, 8);
    assert!(
        serial == parallel,
        "fuzzer digest diverged between 1 and 8 threads"
    );
    assert_eq!(serial.lines().count(), 32);
    assert_eq!(
        serial,
        wireless_networks::check::range_digest(0, 32, 8),
        "fuzzer digest not stable across repeat runs"
    );
}

/// Differential scheduler check over the fuzz corpus: every generated
/// scenario replayed through the timer wheel produces the exact digest
/// the binary heap produces — per-seed event counts, violation counts,
/// trace fingerprints and metrics fingerprints all byte-identical.
/// (CI runs the full 200-seed sweep via `fuzz --dual`; this in-tree
/// slice keeps the guarantee under plain `cargo test`.)
#[test]
fn fuzzer_digest_is_identical_across_scheduler_backends() {
    use wireless_networks::sim::SchedulerKind;
    let heap = wireless_networks::check::range_digest_with(0, 32, 1, SchedulerKind::BinaryHeap);
    let wheel = wireless_networks::check::range_digest_with(0, 32, 1, SchedulerKind::TimerWheel);
    assert!(
        heap == wheel,
        "fuzzer digest diverged between scheduler back ends:\nheap:\n{heap}\nwheel:\n{wheel}"
    );
    assert_eq!(heap.lines().count(), 32);
}

/// The SCALE-DCF saturation workload — the dense-timer stress case the
/// wheel exists for — also runs bit-identically on both back ends.
#[test]
fn scale_dcf_is_identical_across_scheduler_backends() {
    use wireless_networks::core::scenarios::scale_dcf_point;
    use wireless_networks::sim::SchedulerKind;
    let heap = scale_dcf_point(20, 150, 7, SchedulerKind::BinaryHeap);
    let wheel = scale_dcf_point(20, 150, 7, SchedulerKind::TimerWheel);
    assert_eq!(heap.events, wheel.events);
    assert_eq!(
        heap.metrics_fnv, wheel.metrics_fnv,
        "SCALE-DCF metrics diverged between scheduler back ends"
    );
    assert!(heap.events > 10_000, "workload too small to mean anything");
}

/// Two runs of the same seeded scenario give bit-equal results — the
/// saturation sim has no hidden global state.
#[test]
fn same_seed_same_throughput() {
    let a = wlan_saturation_full(PhyStandard::Dot11g, 4, false, 99, false, false);
    let b = wlan_saturation_full(PhyStandard::Dot11g, 4, false, 99, false, false);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// Different seeds actually change the outcome (the seed is wired
/// through, not ignored).
#[test]
fn different_seed_different_schedule() {
    let a = wlan_saturation_full(PhyStandard::Dot11g, 4, false, 99, false, false);
    let b = wlan_saturation_full(PhyStandard::Dot11g, 4, false, 100, false, false);
    assert_ne!(a.to_bits(), b.to_bits());
}
