//! Traffic generators for the WLAN simulation.
//!
//! Three arrival models cover the workloads the text's applications
//! section implies: constant-bit-rate streams (§7 surveillance
//! cameras), Poisson request traffic (web browsing at the hot spot),
//! and periodic telemetry with jitter (M2M meter reading).
//! All are deterministic given their seed and stage their frames into
//! the world's arena, scheduling compact [`wn_mac80211::MacEvent::Inject`]
//! events that carry only frame ids.

use wn_mac80211::addr::MacAddr;
use wn_mac80211::frame::{DsBits, Frame, SequenceControl};
use wn_mac80211::sim::{inject_at, StationId, WlanWorld};
use wn_sim::{Rng, SimDuration, SimTime, Simulation};

/// A traffic flow description.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Sending station.
    pub from: StationId,
    /// Destination MAC address.
    pub to: MacAddr,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Source address stamped into the frames.
    pub source_addr: MacAddr,
    /// BSSID stamped into the frames (IBSS-style direct frames).
    pub bssid: MacAddr,
}

impl Flow {
    /// A direct (ad hoc style) flow between two stations of a world.
    pub fn direct(world: &WlanWorld, from: StationId, to: StationId, payload: usize) -> Flow {
        Flow {
            from,
            to: world.addr(to),
            payload,
            source_addr: world.addr(from),
            bssid: MacAddr::random_ibss_bssid(1),
        }
    }

    fn frame(&self) -> Frame {
        Frame::data(
            DsBits::Ibss,
            self.to,
            self.source_addr,
            self.bssid,
            SequenceControl::default(),
            vec![0xF1; self.payload],
        )
    }
}

/// Schedules a constant-bit-rate stream: one packet every
/// `payload·8/rate_bps` seconds over `[start, until)`.
///
/// Returns the number of packets scheduled.
pub fn cbr(
    sim: &mut Simulation<WlanWorld>,
    flow: &Flow,
    rate_bps: f64,
    start: SimTime,
    until: SimTime,
) -> u64 {
    assert!(rate_bps > 0.0, "rate must be positive");
    let interval = SimDuration::from_secs_f64(flow.payload as f64 * 8.0 / rate_bps);
    let mut t = start;
    let mut n = 0;
    while t < until {
        inject_at(sim, t, flow.from, flow.frame());
        t += interval;
        n += 1;
    }
    n
}

/// Schedules Poisson arrivals at `mean_rate_pps` packets per second.
///
/// Returns the number of packets scheduled.
pub fn poisson(
    sim: &mut Simulation<WlanWorld>,
    flow: &Flow,
    mean_rate_pps: f64,
    seed: u64,
    start: SimTime,
    until: SimTime,
) -> u64 {
    assert!(mean_rate_pps > 0.0, "rate must be positive");
    let mut rng = Rng::new(seed ^ 0x9 ^ flow.from as u64);
    let mut t = start;
    let mut n = 0;
    loop {
        t += SimDuration::from_secs_f64(rng.exponential(1.0 / mean_rate_pps));
        if t >= until {
            break;
        }
        inject_at(sim, t, flow.from, flow.frame());
        n += 1;
    }
    n
}

/// Schedules periodic telemetry with uniform jitter: one packet every
/// `period` ± `jitter` (the §7 "automatic meter reading" shape).
///
/// Returns the number of packets scheduled.
pub fn telemetry(
    sim: &mut Simulation<WlanWorld>,
    flow: &Flow,
    period: SimDuration,
    jitter: SimDuration,
    seed: u64,
    start: SimTime,
    until: SimTime,
) -> u64 {
    assert!(jitter <= period, "jitter must not exceed the period");
    let mut rng = Rng::new(seed ^ 0x7E1E ^ flow.from as u64);
    let mut t = start;
    let mut n = 0;
    while t < until {
        let offset = SimDuration::from_nanos(rng.below(jitter.as_nanos().max(1)));
        inject_at(sim, t + offset, flow.from, flow.frame());
        t += period;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use wn_mac80211::sim::{boot, MacConfig, NullUpper};
    use wn_phy::geom::Point;
    use wn_phy::modulation::PhyStandard;

    fn two_station_sim(seed: u64) -> Simulation<WlanWorld> {
        let mut cfg = MacConfig::new(PhyStandard::Dot11g);
        cfg.seed = seed;
        let mut w = WlanWorld::new(cfg);
        w.add_station(
            MacAddr::station(0),
            Point::new(0.0, 0.0),
            Box::new(NullUpper),
        );
        w.add_station(
            MacAddr::station(1),
            Point::new(8.0, 0.0),
            Box::new(NullUpper),
        );
        let mut sim = Simulation::new(w);
        boot(&mut sim);
        sim
    }

    #[test]
    fn cbr_delivers_at_the_configured_rate() {
        let mut sim = two_station_sim(1);
        let flow = Flow::direct(sim.world(), 0, 1, 500);
        // 1 Mbps for one second = 250 packets of 500 B.
        let n = cbr(&mut sim, &flow, 1e6, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(n, 250);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.world().stats(1).rx_accepted, 250);
        let mbps = sim.world().stats(1).rx_payload_bytes as f64 * 8.0 / 1e6;
        assert!((mbps - 1.0).abs() < 0.01, "{mbps}");
    }

    #[test]
    fn poisson_mean_rate_close() {
        let mut sim = two_station_sim(2);
        let flow = Flow::direct(sim.world(), 0, 1, 200);
        let n = poisson(
            &mut sim,
            &flow,
            500.0,
            7,
            SimTime::ZERO,
            SimTime::from_secs(4),
        );
        // 500 pps over 4 s → ~2000 arrivals, ±10%.
        assert!((1800..2200).contains(&(n as i64)), "n = {n}");
        sim.run_until(SimTime::from_secs(5));
        // Light load at 54 Mbps: everything arrives.
        assert_eq!(sim.world().stats(1).rx_accepted, n);
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let counts: Vec<u64> = (0..2)
            .map(|_| {
                let mut sim = two_station_sim(3);
                let flow = Flow::direct(sim.world(), 0, 1, 100);
                poisson(
                    &mut sim,
                    &flow,
                    100.0,
                    11,
                    SimTime::ZERO,
                    SimTime::from_secs(2),
                )
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn telemetry_period_and_jitter() {
        let mut sim = two_station_sim(4);
        let flow = Flow::direct(sim.world(), 0, 1, 64);
        let n = telemetry(
            &mut sim,
            &flow,
            SimDuration::from_millis(100),
            SimDuration::from_millis(20),
            5,
            SimTime::ZERO,
            SimTime::from_secs(2),
        );
        assert_eq!(n, 20);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.world().stats(1).rx_accepted, 20);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let mut sim = two_station_sim(5);
        let flow = Flow::direct(sim.world(), 0, 1, 100);
        cbr(&mut sim, &flow, 0.0, SimTime::ZERO, SimTime::from_secs(1));
    }
}
