//! METRO-DCF at full scale (DESIGN.md §17): the grid-indexed metro
//! must construct, plan and run at 100k+ stations — the size where the
//! dense O(n²) paths stop being an option — with one interference
//! shard per cell, a plan that re-validates coherent, and byte-
//! identical digests between the serial composition and the windowed
//! shard executor.
//!
//! Like `city_dcf.rs` and `scale_dcf.rs`, the flagship sizes are
//! release-only; the tier-1 debug suite runs the small sweep points.

use wireless_networks::core::scenarios::{metro_dcf_point, metro_dcf_sweep, MetroDcfPoint};

fn dump(p: &MetroDcfPoint) {
    eprintln!(
        "METRO-DCF cells={} stations={} shards={} plan={:.1}ms build={:?}ms \
         stored={:?} coherent={} identical={}",
        p.cells,
        p.stations,
        p.shards,
        p.plan_ms,
        p.build_ms,
        p.stored_entries,
        p.grid_coherent,
        p.byte_identical(),
    );
}

fn assert_point_sound(p: &MetroDcfPoint) {
    assert_eq!(p.shards, p.cells, "one interference shard per cell");
    assert!(
        p.incoherence.is_none(),
        "plan failed re-validation: {:?}",
        p.incoherence
    );
    assert!(p.grid_coherent, "grid structure incoherent");
    assert!(p.serial.events > 0, "the metro must actually run");
    assert!(
        p.byte_identical(),
        "windowed execution diverged from the serial composition"
    );
    if let Some(stored) = p.stored_entries {
        assert!(
            stored < p.dense_entries(),
            "sparse rows must store fewer pairs than the dense matrix"
        );
    }
}

/// Every sweep point — debug or release — plans one shard per cell,
/// re-validates, and digests byte-identically under the executor.
#[test]
fn every_sweep_point_is_sound() {
    for (rows, cols, senders, duration_ms) in metro_dcf_sweep() {
        let p = metro_dcf_point(rows, cols, senders, duration_ms, 42);
        dump(&p);
        assert_point_sound(&p);
    }
}

/// The headline gate: the release flagship covers ≥100k stations and
/// still constructs, grid-plans and runs end to end. Grid planning
/// must stay in interactive territory (well under a minute — the
/// O(n²) scan would take hours here), which is the whole point of the
/// spatial index.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-sized metro (100k+ stations); run with --release (CI does)"
)]
fn flagship_metro_reaches_100k_stations() {
    let (rows, cols, senders, duration_ms) = *metro_dcf_sweep().last().expect("sweep non-empty");
    let p = metro_dcf_point(rows, cols, senders, duration_ms, 42);
    dump(&p);
    assert!(
        p.stations >= 100_000,
        "flagship must cover >=100k stations, got {}",
        p.stations
    );
    assert_point_sound(&p);
    assert!(
        p.plan_ms < 60_000.0,
        "grid planning took {:.0}ms at n={} — the spatial index is not doing its job",
        p.plan_ms,
        p.stations
    );
}
